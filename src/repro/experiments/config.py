"""Experiment scale presets.

The paper's parameter defaults (Tab. II) are: key domain ``K = 10^5``, skew
``z = 0.85``, fluctuation ``f = 1.0``, ``θ_max = 0.08``, ``β = 1.5``, window
``w = 1``, ``N_D = 10`` task instances and routing-table cap ``N_A = 3000``.
Running every sweep at that size is minutes of wall time per figure in pure
Python, so the benchmarks default to a scaled-down preset with the same shape;
the ``paper`` preset restores the published defaults for full runs.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

__all__ = ["ExperimentScale", "SCALES", "get_scale"]


@dataclass(frozen=True)
class ExperimentScale:
    """A consistent set of workload sizes for the figure drivers."""

    name: str
    #: Key domain size K.
    num_keys: int
    #: Tuples generated per interval.
    tuples_per_interval: int
    #: Number of intervals per run (planner sweeps).
    intervals: int
    #: Number of intervals per run (full simulations, which are slower).
    sim_intervals: int
    #: Default number of downstream task instances N_D.
    num_tasks: int
    #: Default routing-table cap A_max.
    max_table_size: int
    #: Default Zipf skew z.
    skew: float = 0.85
    #: Default fluctuation rate f.
    fluctuation: float = 1.0
    #: Default imbalance tolerance θ_max.
    theta_max: float = 0.08
    #: Default γ weight β.
    beta: float = 1.5
    #: Default state window w.
    window: int = 1

    def scaled(self, **overrides) -> "ExperimentScale":
        """Return a copy with some fields overridden."""
        return replace(self, **overrides)


SCALES: Dict[str, ExperimentScale] = {
    # Fast enough for CI / pytest-benchmark (seconds per figure).
    "tiny": ExperimentScale(
        name="tiny",
        num_keys=2_000,
        tuples_per_interval=20_000,
        intervals=6,
        sim_intervals=8,
        num_tasks=8,
        max_table_size=400,
    ),
    # Laptop-scale default used by the shipped benchmarks.
    "small": ExperimentScale(
        name="small",
        num_keys=10_000,
        tuples_per_interval=100_000,
        intervals=10,
        sim_intervals=15,
        num_tasks=10,
        max_table_size=1_000,
    ),
    # The paper's defaults (Tab. II); expect minutes per figure in Python.
    "paper": ExperimentScale(
        name="paper",
        num_keys=100_000,
        tuples_per_interval=1_000_000,
        intervals=50,
        sim_intervals=50,
        num_tasks=10,
        max_table_size=3_000,
    ),
}


def get_scale(scale: str | ExperimentScale) -> ExperimentScale:
    """Resolve a scale preset by name (or pass an explicit preset through)."""
    if isinstance(scale, ExperimentScale):
        return scale
    try:
        return SCALES[scale]
    except KeyError as exc:
        raise KeyError(f"unknown scale {scale!r}; known: {sorted(SCALES)}") from exc
