"""Shared sweep machinery for the figure drivers.

Every evaluation figure is one of three shapes, and the helpers here implement
each shape once so the drivers in :mod:`repro.experiments.figures` only
declare *what* varies:

* :func:`planner_sweep` — stream a workload through rebalancers over the
  cartesian product of one or more parameter axes (Figs. 8–12, 17–21);
* :func:`simulate` — run one strategy through the fluid engine simulator with
  the scale preset supplying every untouched knob (Figs. 13–15);
* :func:`percentile_points` — collapse a sample list into the CDF percentile
  points the skewness figures plot (Fig. 7).

:func:`zipf_workload` materialises the default synthetic workload with
per-axis overrides; it is the "workload spec" behind most figures.
"""

from __future__ import annotations

import itertools
import math
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.engine.metrics import MetricsCollector
from repro.engine.operator import OperatorLogic
from repro.experiments.config import ExperimentScale
from repro.experiments.harness import PlannerRun, run_planner_sequence, run_simulation

__all__ = [
    "zipf_workload",
    "percentile_points",
    "planner_sweep",
    "simulate",
]

WorkloadSnapshot = Mapping[Any, float]


def zipf_workload(
    scale: ExperimentScale,
    *,
    num_keys: Optional[int] = None,
    num_tasks: Optional[int] = None,
    fluctuation: Optional[float] = None,
    intervals: Optional[int] = None,
    skew: Optional[float] = None,
    seed: int = 0,
) -> List[Dict[int, float]]:
    """Materialise a Zipf workload with the scale's defaults and overrides."""
    from repro.workloads import ZipfWorkload

    workload = ZipfWorkload(
        num_keys=num_keys if num_keys is not None else scale.num_keys,
        skew=skew if skew is not None else scale.skew,
        tuples_per_interval=scale.tuples_per_interval,
        fluctuation=fluctuation if fluctuation is not None else scale.fluctuation,
        num_tasks=num_tasks if num_tasks is not None else scale.num_tasks,
        intervals=intervals if intervals is not None else scale.intervals,
        seed=seed,
    )
    return workload.take(intervals if intervals is not None else scale.intervals)


def percentile_points(
    samples: Iterable[float], percentiles: Sequence[int]
) -> List[Tuple[int, float]]:
    """``(percentile, value)`` points of the empirical CDF of ``samples``.

    Uses the same nearest-rank convention as the paper's CDF plots: the value
    at percentile ``p`` is the ``ceil(p/100 * n)``-th smallest sample (the
    rank is computed in floating point, matching the historical drivers).
    """
    ordered = sorted(samples)
    if not ordered:
        return []
    points: List[Tuple[int, float]] = []
    count = len(ordered)
    for percentile in percentiles:
        index = max(0, math.ceil(percentile / 100 * count) - 1)
        points.append((percentile, ordered[min(index, count - 1)]))
    return points


def planner_sweep(
    *,
    axes: Mapping[str, Sequence[Any]],
    workload: Callable[[Dict[str, Any]], List[Dict[Any, float]]],
    planner_kwargs: Callable[[Dict[str, Any]], Dict[str, Any]],
    row: Callable[[PlannerRun, Dict[str, Any]], Any],
    algorithms: Sequence[str] = ("mixed",),
    include_algorithm: bool = True,
    force_every_interval: bool = False,
    seed: int = 0,
) -> List[Dict[str, Any]]:
    """Run rebalancers over the cartesian product of parameter ``axes``.

    For every axis combination (iterated first-axis-major, matching the
    figures' nesting) the ``workload`` factory materialises the interval
    snapshots, each algorithm in ``algorithms`` is streamed through
    :func:`~repro.experiments.harness.run_planner_sequence` with the knobs
    produced by ``planner_kwargs``, and ``row`` maps the finished
    :class:`~repro.experiments.harness.PlannerRun` onto its metric columns —
    either one ``{column: value}`` dict or a list of them (for per-adjustment
    figures).  Each emitted row starts with the axis columns, then the
    ``algorithm`` column (unless ``include_algorithm`` is off), then the
    metric columns.
    """
    rows: List[Dict[str, Any]] = []
    names = list(axes.keys())
    for combo in itertools.product(*axes.values()):
        axis = dict(zip(names, combo))
        snapshots = workload(axis)
        for algorithm in algorithms:
            run = run_planner_sequence(
                algorithm,
                snapshots,
                seed=seed,
                force_every_interval=force_every_interval,
                **planner_kwargs(axis),
            )
            metrics = row(run, axis)
            for columns in metrics if isinstance(metrics, list) else [metrics]:
                emitted = dict(axis)
                if include_algorithm:
                    emitted["algorithm"] = algorithm
                emitted.update(columns)
                rows.append(emitted)
    return rows


def simulate(
    scale: ExperimentScale,
    strategy: str,
    workload: Iterable[WorkloadSnapshot],
    logic: OperatorLogic,
    *,
    theta_max: Optional[float] = None,
    max_table_size: Optional[int] = -1,
    window: Optional[int] = None,
    seed: int = 0,
    **kwargs: Any,
) -> MetricsCollector:
    """Run one strategy through the fluid simulator with scale-preset defaults.

    Every knob left unset falls back to the scale preset (``max_table_size``
    uses the ``-1`` sentinel so an explicit ``None`` still means "unbounded
    table").  Extra keyword arguments (``beta``, ``readj_sigma``,
    ``scale_out_at``, ``capacity_factor``, …) pass straight through to
    :func:`~repro.experiments.harness.run_simulation`.
    """
    return run_simulation(
        strategy,
        workload,
        logic,
        num_tasks=scale.num_tasks,
        theta_max=theta_max if theta_max is not None else scale.theta_max,
        max_table_size=(
            max_table_size if max_table_size != -1 else scale.max_table_size
        ),
        window=window if window is not None else scale.window,
        seed=seed,
        **kwargs,
    )
