"""Shared machinery for the figure drivers.

Two kinds of runs are needed:

* *Planner sweeps* (Figs. 8–12, 17–21): only the rebalancing algorithms are
  exercised — a synthetic workload is streamed through a controller (or a
  baseline rebalancer) and the plan-generation time, migration cost and routing
  table size are measured per adjustment.  No engine simulation is involved, so
  these are fast and scale to large key domains.
* *System simulations* (Figs. 13–16): a topology is run through the fluid
  engine simulator and throughput/latency are measured.

Strategy names are resolved through the registry in
:mod:`repro.core.strategy`; :func:`build_partitioner` survives as a thin
deprecation shim over ``get_strategy(name).build(...)``.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, List, Mapping, Optional

from repro.baselines import Partitioner
from repro.core.assignment import AssignmentFunction
from repro.core.compact import CompactMixedPlanner
from repro.core.discretization import HLHEDiscretizer
from repro.core.load import load_from_costs, max_balance_indicator
from repro.core.planner import PlannerConfig, RebalanceResult, get_algorithm
from repro.core.statistics import IntervalStats, StatisticsStore
from repro.core.strategy import get_strategy, has_strategy
from repro.engine.metrics import MetricsCollector
from repro.engine.operator import OperatorLogic
from repro.engine.simulator import OperatorSimulator, SimulationConfig
from repro.experiments.reporting import mean

__all__ = [
    "PlannerRun",
    "run_planner_sequence",
    "run_simulation",
    "build_partitioner",
    "STRATEGY_NAMES",
]

Key = Hashable
WorkloadSnapshot = Mapping[Key, float]

#: Strategy labels used by the figure drivers, matching the paper's legends.
STRATEGY_NAMES = ("storm", "ideal", "pkg", "readj", "dkg", "mixed", "mintable", "minmig", "mixedbf")


@dataclass
class PlannerRun:
    """Aggregated outcome of streaming a workload through one rebalancer."""

    algorithm: str
    rebalances: int = 0
    generation_times: List[float] = field(default_factory=list)
    migration_fractions: List[float] = field(default_factory=list)
    table_sizes: List[int] = field(default_factory=list)
    max_thetas: List[float] = field(default_factory=list)
    load_estimation_errors: List[float] = field(default_factory=list)
    skewness_before: List[float] = field(default_factory=list)

    @property
    def avg_generation_time(self) -> float:
        """Average plan generation wall time in seconds (NaN when no rebalance ran)."""
        return mean(self.generation_times)

    @property
    def avg_migration_fraction(self) -> float:
        """Average fraction of operator state migrated per adjustment.

        NaN (rendered as ``—`` in reports) when the run never rebalanced, so
        "nothing migrated because nothing happened" is distinguishable from a
        true 0.0 average.
        """
        return mean(self.migration_fractions)

    @property
    def avg_table_size(self) -> float:
        return mean([float(size) for size in self.table_sizes])

    @property
    def final_table_size(self) -> int:
        return self.table_sizes[-1] if self.table_sizes else 0

    @property
    def avg_max_theta(self) -> float:
        return mean(self.max_thetas)

    @property
    def avg_load_estimation_error(self) -> float:
        return mean(self.load_estimation_errors)

    # -- persistence -----------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready representation (used by the ResultsStore)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "PlannerRun":
        """Inverse of :meth:`to_dict`."""
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


def run_planner_sequence(
    algorithm: str,
    workload: Iterable[WorkloadSnapshot],
    *,
    num_tasks: int,
    theta_max: float = 0.08,
    max_table_size: Optional[int] = None,
    beta: float = 1.5,
    window: int = 1,
    use_compact: bool = False,
    discretization_degree: Optional[int] = 8,
    readj_sigma: float = 2.0,
    seed: int = 0,
    force_every_interval: bool = False,
) -> PlannerRun:
    """Stream interval snapshots through a rebalancer and collect planner metrics.

    ``algorithm`` is any rebalancing strategy in the
    :mod:`repro.core.strategy` registry: a core controller variant
    (``"mixed"``, ``"mintable"``, ``"minmig"``, ``"mixedbf"``, ``"simple"`` —
    run as the bare planning algorithm over a shared statistics store) or a
    self-contained rebalancing baseline (``"readj"``, ``"dkg"`` — streamed
    through its own ``on_interval_end``).  With ``use_compact`` the
    compact-representation Mixed planner is used instead
    (``discretization_degree=None`` keeps the original key space).
    ``force_every_interval`` triggers a planning round even when the operator
    is already balanced (used by the routing-table-growth experiment).
    """
    run = PlannerRun(algorithm=algorithm if not use_compact else "compact-mixed")

    spec = (
        get_strategy(algorithm)
        if not use_compact and has_strategy(algorithm)
        else None
    )
    if spec is not None and spec.core_algorithm is None:
        if not spec.rebalancing:
            raise KeyError(
                f"strategy {algorithm!r} never rebalances; a planner sweep "
                "needs a rebalancing strategy"
            )
        partitioner: Partitioner = spec.build(
            num_tasks,
            theta_max=theta_max,
            max_table_size=max_table_size,
            beta=beta,
            window=window,
            seed=seed,
            readj_sigma=readj_sigma,
        )
        for index, snapshot in enumerate(workload):
            stats = IntervalStats.from_frequencies(index, dict(snapshot))
            loads = load_from_costs(
                {k: s.cost for k, s in stats.items()}, partitioner.route, num_tasks
            )
            run.skewness_before.append(max_balance_indicator(loads))
            result = partitioner.on_interval_end(stats)
            if result is not None:
                _record(run, result)
        return run

    assignment = AssignmentFunction.hashed(num_tasks, seed=seed)
    stats_store = StatisticsStore(window=window)
    planner_config = PlannerConfig(
        theta_max=theta_max,
        max_table_size=max_table_size,
        beta=beta,
        window=window,
    )
    compact_planner = None
    core_algorithm = None
    if use_compact:
        discretizer = (
            HLHEDiscretizer(discretization_degree)
            if discretization_degree is not None
            else None
        )
        compact_planner = CompactMixedPlanner(discretizer)
    else:
        core_algorithm = get_algorithm(
            spec.core_algorithm if spec is not None else algorithm
        )

    for index, snapshot in enumerate(workload):
        stats = IntervalStats.from_frequencies(index, dict(snapshot))
        stats_store.push(stats)
        loads = load_from_costs(stats_store.cost_map(), assignment, num_tasks)
        imbalance = max_balance_indicator(loads)
        run.skewness_before.append(imbalance)
        if not force_every_interval and imbalance <= theta_max:
            continue
        if compact_planner is not None:
            outcome = compact_planner.plan(assignment, stats_store, planner_config)
            result = outcome.result
            run.load_estimation_errors.append(outcome.load_estimation_error)
        else:
            assert core_algorithm is not None
            result = core_algorithm.plan(assignment, stats_store, planner_config)
        assignment = result.assignment
        _record(run, result)
    return run


def _record(run: PlannerRun, result: RebalanceResult) -> None:
    run.rebalances += 1
    run.generation_times.append(result.generation_time)
    run.migration_fractions.append(result.migration_fraction)
    run.table_sizes.append(result.table_size)
    run.max_thetas.append(result.max_theta)


def build_partitioner(
    name: str,
    num_tasks: int,
    *,
    theta_max: float = 0.08,
    max_table_size: Optional[int] = None,
    beta: float = 1.5,
    window: int = 1,
    seed: int = 0,
    readj_sigma: float = 2.0,
) -> Partitioner:
    """Deprecated: instantiate a strategy by its evaluation label.

    Thin shim over the strategy registry, kept for one release so existing
    call sites keep working; use
    ``repro.core.strategy.get_strategy(name).build(num_tasks, ...)`` instead.
    """
    warnings.warn(
        "build_partitioner is deprecated; use "
        "repro.core.strategy.get_strategy(name).build(num_tasks, ...)",
        DeprecationWarning,
        stacklevel=2,
    )
    return get_strategy(name).build(
        num_tasks,
        theta_max=theta_max,
        max_table_size=max_table_size,
        beta=beta,
        window=window,
        seed=seed,
        readj_sigma=readj_sigma,
    )


def run_simulation(
    strategy: str,
    workload: Iterable[WorkloadSnapshot],
    logic: OperatorLogic,
    *,
    num_tasks: int,
    theta_max: float = 0.08,
    max_table_size: Optional[int] = None,
    beta: float = 1.5,
    window: int = 1,
    readj_sigma: float = 2.0,
    capacity_factor: float = 1.15,
    interval_seconds: float = 10.0,
    seed: int = 0,
    scale_out_at: Optional[Mapping[int, int]] = None,
) -> MetricsCollector:
    """Run one strategy on one operator over the given workload.

    ``beta`` and ``readj_sigma`` reach the underlying partitioner, so a
    simulated readj/mixed run can match a planner-sweep configuration exactly.
    """
    partitioner = get_strategy(strategy).build(
        num_tasks,
        theta_max=theta_max,
        max_table_size=max_table_size,
        beta=beta,
        window=window,
        seed=seed,
        readj_sigma=readj_sigma,
    )
    simulator = OperatorSimulator(
        partitioner,
        logic,
        SimulationConfig(
            capacity_factor=capacity_factor, interval_seconds=interval_seconds
        ),
        name=logic.name,
    )
    collector = simulator.run(workload, scale_out_at=scale_out_at)
    collector.label = strategy
    return collector
