"""Declarative experiment specs and the runner behind every entry point.

The public experiment API has three pieces:

* an **experiment registry**: every figure driver registers itself with
  :func:`register_experiment` under its id (``"fig07"`` … ``"fig21"``), so
  the CLI, the examples and the benchmarks can enumerate and resolve
  experiments by name;
* :class:`ExperimentSpec` — a declarative description of one run: experiment
  name, scale preset plus field overrides, seed, an optional strategy list
  and sweep axes, and free-form driver parameters.  Specs serialise to/from
  JSON (``python -m repro run myspec.json``);
* :func:`run` / :func:`run_batch` — execute specs, stamp the result with
  :class:`RunMetadata` (scale, seed, git revision, wall time) and optionally
  persist it through a :class:`~repro.experiments.store.ResultsStore`.

Example::

    from repro.experiments import ExperimentSpec, run

    spec = ExperimentSpec(
        "fig09",
        scale="tiny",
        sweep={"thetas": [0.02, 0.08, 0.3]},
        strategies=["mixed", "mintable"],
        seed=1,
    )
    outcome = run(spec)
    print(outcome.result.to_text())
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Union,
)

from repro.experiments.config import ExperimentScale, get_scale
from repro.experiments.reporting import ExperimentResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.store import ResultsStore

__all__ = [
    "ExperimentDefinition",
    "ExperimentSpec",
    "ExperimentRun",
    "RunMetadata",
    "register_experiment",
    "get_experiment",
    "list_experiments",
    "experiment_names",
    "run",
    "run_batch",
    "git_revision",
]

#: ``builder(scale, *, seed=0, **params) -> ExperimentResult``
ExperimentBuilder = Callable[..., ExperimentResult]


@dataclass(frozen=True)
class ExperimentDefinition:
    """A registered experiment: name, one-line description and builder."""

    name: str
    builder: ExperimentBuilder
    description: str = ""


_EXPERIMENTS: Dict[str, ExperimentDefinition] = {}


def register_experiment(
    name: str, *, description: str = "", replace: bool = False
) -> Callable[[ExperimentBuilder], ExperimentBuilder]:
    """Decorator registering ``builder(scale, *, seed=0, **params)``."""

    def decorator(builder: ExperimentBuilder) -> ExperimentBuilder:
        if not replace and name in _EXPERIMENTS:
            raise ValueError(f"experiment {name!r} is already registered")
        _EXPERIMENTS[name] = ExperimentDefinition(
            name=name, builder=builder, description=description
        )
        return builder

    return decorator


def _load_builtins() -> None:
    from repro.experiments import figures  # noqa: F401


def get_experiment(name: str) -> ExperimentDefinition:
    """Resolve a registered experiment by name (e.g. ``"fig07"``)."""
    _load_builtins()
    try:
        return _EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(_EXPERIMENTS)}"
        ) from exc


def list_experiments() -> List[ExperimentDefinition]:
    """Every registered experiment, sorted by name."""
    _load_builtins()
    return [_EXPERIMENTS[name] for name in sorted(_EXPERIMENTS)]


def experiment_names() -> List[str]:
    """Sorted names of every registered experiment."""
    _load_builtins()
    return sorted(_EXPERIMENTS)


def git_revision() -> Optional[str]:
    """The repository's current commit hash, or ``None`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    revision = proc.stdout.strip()
    return revision if proc.returncode == 0 and revision else None


@dataclass(frozen=True)
class ExperimentSpec:
    """Declarative description of one experiment run.

    Attributes
    ----------
    experiment:
        Registered experiment name (``"fig07"`` … ``"fig21"`` or a plug-in).
    scale:
        Scale preset name or an explicit :class:`ExperimentScale`.
    overrides:
        :class:`ExperimentScale` field overrides applied on top of the preset
        (e.g. ``{"num_keys": 5000}``).
    seed:
        Master RNG seed threaded through workloads and hash functions.
    strategies:
        Optional strategy list, passed to the driver as its ``strategies``
        parameter (drivers without a strategy choice reject it).
    sweep:
        Optional sweep axes, ``{driver parameter: values}`` (e.g.
        ``{"thetas": [0.02, 0.3]}``); merged into the driver parameters.
    params:
        Remaining driver-specific parameters; wins over ``sweep`` and
        ``strategies`` on conflict.
    """

    experiment: str
    scale: Union[str, ExperimentScale] = "small"
    overrides: Mapping[str, Any] = field(default_factory=dict)
    seed: int = 0
    strategies: Optional[Sequence[str]] = None
    sweep: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        # Canonicalise container fields (tuples -> lists, mappings -> dicts)
        # so a spec equals its JSON save/load image.
        object.__setattr__(self, "overrides", dict(self.overrides))
        object.__setattr__(
            self, "sweep", {axis: list(values) for axis, values in self.sweep.items()}
        )
        object.__setattr__(
            self,
            "params",
            {
                key: list(value) if isinstance(value, tuple) else value
                for key, value in self.params.items()
            },
        )
        if self.strategies is not None:
            object.__setattr__(self, "strategies", list(self.strategies))

    def resolve_scale(self) -> ExperimentScale:
        """The effective scale: preset plus overrides."""
        scale = get_scale(self.scale)
        return scale.scaled(**dict(self.overrides)) if self.overrides else scale

    def scale_label(self) -> str:
        """Preset name recorded in run metadata."""
        return self.scale if isinstance(self.scale, str) else self.scale.name

    def driver_params(self) -> Dict[str, Any]:
        """The merged keyword arguments handed to the experiment builder."""
        merged: Dict[str, Any] = dict(self.sweep)
        if self.strategies is not None:
            merged["strategies"] = list(self.strategies)
        merged.update(self.params)
        return merged

    def run(self, *, store: Optional["ResultsStore"] = None) -> "ExperimentRun":
        """Execute the spec; persist through ``store`` when given."""
        return run(self, store=store)

    # -- (de)serialisation -----------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation (CLI spec files, ResultsStore).

        The payload is canonicalised through JSON so that
        ``ExperimentSpec.from_dict(spec.to_dict())`` equals what a save/load
        cycle produces (tuples become lists either way).
        """
        scale: Any = self.scale
        if isinstance(scale, ExperimentScale):
            scale = dataclasses.asdict(scale)
        payload = {
            "experiment": self.experiment,
            "scale": scale,
            "overrides": dict(self.overrides),
            "seed": self.seed,
            "strategies": list(self.strategies) if self.strategies is not None else None,
            "sweep": {axis: list(values) for axis, values in self.sweep.items()},
            "params": dict(self.params),
        }
        return json.loads(json.dumps(payload))

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        scale = payload.get("scale", "small")
        if isinstance(scale, Mapping):
            scale = ExperimentScale(**scale)
        strategies = payload.get("strategies")
        return cls(
            experiment=payload["experiment"],
            scale=scale,
            overrides=dict(payload.get("overrides", {})),
            seed=int(payload.get("seed", 0)),
            strategies=list(strategies) if strategies is not None else None,
            sweep=dict(payload.get("sweep", {})),
            params=dict(payload.get("params", {})),
        )


@dataclass(frozen=True)
class RunMetadata:
    """Provenance stamped onto every experiment run.

    ``engine`` records which execution engine produced the result — the fluid
    interval simulator (``"fluid"``) or the process-parallel runtime
    (``"process"``) — and ``host_cpu_count`` the CPUs of the producing host,
    so stored runs are comparable across machines: a wall-clock number from a
    2-core laptop is not the same measurement as one from a 64-core server.
    """

    run_id: str
    experiment: str
    figure: str
    scale: str
    seed: int
    wall_time_seconds: float
    created_at: str
    git_rev: Optional[str] = None
    repro_version: str = ""
    engine: str = "fluid"
    host_cpu_count: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "RunMetadata":
        known = {f.name for f in dataclasses.fields(cls)}
        return cls(**{key: value for key, value in payload.items() if key in known})


@dataclass
class ExperimentRun:
    """One executed spec: the result rows plus their provenance."""

    spec: ExperimentSpec
    result: ExperimentResult
    metadata: RunMetadata

    def to_dict(self) -> Dict[str, Any]:
        return {
            "metadata": self.metadata.to_dict(),
            "spec": self.spec.to_dict(),
            "result": self.result.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentRun":
        return cls(
            spec=ExperimentSpec.from_dict(payload["spec"]),
            result=ExperimentResult.from_dict(payload["result"]),
            metadata=RunMetadata.from_dict(payload["metadata"]),
        )


def _new_run_id(experiment: str, seed: int) -> str:
    stamp = datetime.now(timezone.utc).strftime("%Y%m%d-%H%M%S-%f")
    return f"{experiment}-{stamp}-s{seed}"


def run(
    spec: Union[ExperimentSpec, str],
    *,
    store: Optional["ResultsStore"] = None,
) -> ExperimentRun:
    """Execute one spec (or a bare experiment name at its default scale).

    Returns the :class:`ExperimentRun`; when ``store`` is given the run is
    also persisted (JSON per run) and the stored run id is in the metadata.
    """
    if isinstance(spec, str):
        spec = ExperimentSpec(spec)
    definition = get_experiment(spec.experiment)
    scale = spec.resolve_scale()
    start = time.perf_counter()
    result = definition.builder(scale, seed=spec.seed, **spec.driver_params())
    wall_time = time.perf_counter() - start

    from repro import __version__

    metadata = RunMetadata(
        run_id=_new_run_id(spec.experiment, spec.seed),
        experiment=spec.experiment,
        figure=result.figure,
        scale=spec.scale_label(),
        seed=spec.seed,
        wall_time_seconds=wall_time,
        created_at=datetime.now(timezone.utc).isoformat(timespec="microseconds"),
        git_rev=git_revision(),
        repro_version=__version__,
        engine="fluid",
        host_cpu_count=os.cpu_count(),
    )
    outcome = ExperimentRun(spec=spec, result=result, metadata=metadata)
    if store is not None:
        store.save(outcome)
    return outcome


def run_batch(
    specs: Iterable[Union[ExperimentSpec, str]],
    *,
    store: Optional["ResultsStore"] = None,
    on_result: Optional[Callable[[ExperimentRun], None]] = None,
) -> List[ExperimentRun]:
    """Execute several specs in order; ``on_result`` fires after each one."""
    outcomes: List[ExperimentRun] = []
    for spec in specs:
        outcome = run(spec, store=store)
        outcomes.append(outcome)
        if on_result is not None:
            on_result(outcome)
    return outcomes
