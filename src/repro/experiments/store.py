"""JSON-per-run persistence of experiment results.

A :class:`ResultsStore` is a directory of runs::

    results/
      fig07-20260727-101502-123456-s0/
        run.json        # RunMetadata + ExperimentSpec + ExperimentResult
        report.txt      # the rendered text table (what `repro report` prints)
        artifacts/      # optional extra payloads (PlannerRun, MetricsCollector)
          mixed.planner_run.json

``run.json`` is self-contained: the stored :class:`ExperimentSpec` can be
re-executed (``python -m repro run <run-dir>/run.json``) and the stored
result compared across runs with :meth:`ResultsStore.load`.  Artifacts carry
the richer per-interval objects — :class:`~repro.experiments.harness.PlannerRun`
and :class:`~repro.engine.metrics.MetricsCollector` — tagged with their kind
so :meth:`load_artifact` reconstructs the typed object.
"""

from __future__ import annotations

import json
import re
from dataclasses import replace
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.experiments.specs import ExperimentRun, RunMetadata

__all__ = ["ResultsStore", "DEFAULT_RESULTS_DIR"]

#: Default root directory (relative to the working directory) for run output.
DEFAULT_RESULTS_DIR = "results"

_RUN_FILE = "run.json"
_REPORT_FILE = "report.txt"
_ARTIFACT_DIR = "artifacts"

def _artifact_classes() -> Dict[str, type]:
    """Typed artifact kinds, resolved lazily.

    Imported on demand so the store keeps no static dependency on the layers
    holding the artifact classes (``repro.runtime`` imports the experiment
    layer back, so a module-level import would create a cycle).
    """
    from repro.engine.metrics import MetricsCollector
    from repro.experiments.harness import PlannerRun
    from repro.runtime.histogram import LatencyHistogram

    return {
        "planner_run": PlannerRun,
        "metrics_collector": MetricsCollector,
        "latency_histogram": LatencyHistogram,
    }


def _artifact_kind(payload: Any) -> Optional[str]:
    for kind, cls in _artifact_classes().items():
        if isinstance(payload, cls):
            return kind
    return None


class ResultsStore:
    """Saves, lists and reloads experiment runs under one root directory."""

    def __init__(self, root: Union[str, Path] = DEFAULT_RESULTS_DIR) -> None:
        self.root = Path(root)

    # -- writing ---------------------------------------------------------------------

    def save(
        self,
        run: ExperimentRun,
        artifacts: Optional[Mapping[str, Any]] = None,
    ) -> Path:
        """Persist one run; returns its directory.

        The run id from the metadata names the directory; on a collision a
        ``-N`` suffix is appended and written back into the run's metadata.
        ``artifacts`` maps names to :class:`PlannerRun` /
        :class:`MetricsCollector` instances (or plain JSON-ready dicts).
        """
        run_id = self._unique_run_id(run.metadata.run_id)
        if run_id != run.metadata.run_id:
            run.metadata = replace(run.metadata, run_id=run_id)
        run_dir = self.root / run_id
        run_dir.mkdir(parents=True)
        (run_dir / _RUN_FILE).write_text(json.dumps(run.to_dict(), indent=1))
        (run_dir / _REPORT_FILE).write_text(run.result.to_text() + "\n")
        for name, payload in (artifacts or {}).items():
            self.save_artifact(run_id, name, payload)
        return run_dir

    def save_artifact(self, run_id: str, name: str, payload: Any) -> Path:
        """Attach one named payload to an existing run."""
        if not re.fullmatch(r"[\w.\-]+", name):
            raise ValueError(f"artifact name {name!r} must be a plain file stem")
        kind = _artifact_kind(payload)
        body = {
            "kind": kind or "json",
            "data": payload.to_dict() if kind else payload,
        }
        directory = self.run_dir(run_id) / _ARTIFACT_DIR
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / f"{name}.json"
        path.write_text(json.dumps(body, indent=1))
        return path

    def _unique_run_id(self, run_id: str) -> str:
        if not (self.root / run_id).exists():
            return run_id
        counter = 2
        while (self.root / f"{run_id}-{counter}").exists():
            counter += 1
        return f"{run_id}-{counter}"

    # -- reading ---------------------------------------------------------------------

    def run_dir(self, run_id: str) -> Path:
        """Directory of one stored run (must exist)."""
        run_dir = self.root / run_id
        if not (run_dir / _RUN_FILE).is_file():
            raise KeyError(
                f"no run {run_id!r} under {self.root}; known: {self.run_ids()}"
            )
        return run_dir

    def run_ids(self) -> List[str]:
        """Ids of every stored run, sorted lexically (experiment, then time)."""
        if not self.root.is_dir():
            return []
        return sorted(
            entry.name
            for entry in self.root.iterdir()
            if (entry / _RUN_FILE).is_file()
        )

    def latest_run_id(self) -> Optional[str]:
        """The most recently created run id, or ``None`` for an empty store."""
        metadata = self.list_runs()
        return metadata[-1].run_id if metadata else None

    def load(self, run_id: str) -> ExperimentRun:
        """Reload one run (spec, result rows and metadata)."""
        payload = json.loads((self.run_dir(run_id) / _RUN_FILE).read_text())
        return ExperimentRun.from_dict(payload)

    def list_runs(self) -> List[RunMetadata]:
        """Metadata of every stored run, sorted by creation time."""
        entries = [
            RunMetadata.from_dict(
                json.loads((self.root / run_id / _RUN_FILE).read_text())["metadata"]
            )
            for run_id in self.run_ids()
        ]
        return sorted(entries, key=lambda meta: (meta.created_at, meta.run_id))

    def artifact_names(self, run_id: str) -> List[str]:
        """Names of the artifacts attached to one run."""
        directory = self.run_dir(run_id) / _ARTIFACT_DIR
        if not directory.is_dir():
            return []
        return sorted(path.stem for path in directory.glob("*.json"))

    def load_artifact(self, run_id: str, name: str) -> Any:
        """Reload one artifact, reconstructing its typed object when tagged."""
        path = self.run_dir(run_id) / _ARTIFACT_DIR / f"{name}.json"
        if not path.is_file():
            raise KeyError(
                f"run {run_id!r} has no artifact {name!r}; "
                f"known: {self.artifact_names(run_id)}"
            )
        body = json.loads(path.read_text())
        cls = _artifact_classes().get(body.get("kind", "json"))
        data = body.get("data")
        return cls.from_dict(data) if cls is not None else data

    def __len__(self) -> int:
        return len(self.run_ids())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultsStore(root={str(self.root)!r}, runs={len(self)})"
