"""Experiment harness regenerating the paper's evaluation (Figs. 7–21).

The public experiment API has three layers:

* the **strategy registry** (:mod:`repro.core.strategy`) naming every
  partitioning strategy and its tunables;
* **ExperimentSpec + runner** (:mod:`repro.experiments.specs`): every figure
  of the evaluation is a registered experiment that can be run declaratively
  — pick a scale preset, override knobs, choose strategies and sweep axes;
* the **ResultsStore** (:mod:`repro.experiments.store`): JSON-per-run
  persistence with run metadata (scale, seed, git revision, wall time) and a
  loader for cross-run comparison.  ``python -m repro`` exposes all of it on
  the command line.

Quick use::

    from repro.experiments import ExperimentSpec, ResultsStore, run

    store = ResultsStore("results")
    outcome = run(ExperimentSpec("fig08", scale="small"), store=store)
    print(outcome.result.to_text())
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.harness import (
    PlannerRun,
    build_partitioner,
    run_planner_sequence,
    run_simulation,
)
from repro.experiments.reporting import ExperimentResult, format_table, mean
from repro.experiments.specs import (
    ExperimentRun,
    ExperimentSpec,
    RunMetadata,
    experiment_names,
    get_experiment,
    list_experiments,
    register_experiment,
    run,
    run_batch,
)
from repro.experiments.store import ResultsStore
from repro.experiments.sweeps import (
    percentile_points,
    planner_sweep,
    simulate,
    zipf_workload,
)

__all__ = [
    "ExperimentResult",
    "ExperimentRun",
    "ExperimentScale",
    "ExperimentSpec",
    "PlannerRun",
    "ResultsStore",
    "RunMetadata",
    "SCALES",
    "build_partitioner",
    "experiment_names",
    "format_table",
    "get_experiment",
    "get_scale",
    "list_experiments",
    "mean",
    "percentile_points",
    "planner_sweep",
    "register_experiment",
    "run",
    "run_batch",
    "run_planner_sequence",
    "run_simulation",
    "simulate",
    "zipf_workload",
]
