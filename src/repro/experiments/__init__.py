"""Benchmark harness regenerating the paper's evaluation (Figs. 7–21).

Each figure of the evaluation and appendix has a driver in
:mod:`repro.experiments.figures` that sweeps the same parameter the paper does
and returns an :class:`~repro.experiments.reporting.ExperimentResult` holding
the series the figure plots.  The drivers accept a ``scale`` preset so that the
pytest benchmarks can run them at laptop scale while the same code path scales
up to paper-sized key domains.

Quick use::

    from repro.experiments import figures
    result = figures.fig08_vary_task_instances(scale="small")
    print(result.to_text())
"""

from repro.experiments.config import SCALES, ExperimentScale, get_scale
from repro.experiments.harness import (
    PlannerRun,
    build_partitioner,
    run_planner_sequence,
    run_simulation,
)
from repro.experiments.reporting import ExperimentResult, format_table

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "PlannerRun",
    "SCALES",
    "build_partitioner",
    "format_table",
    "get_scale",
    "run_planner_sequence",
    "run_simulation",
]
