"""Windowed equi-joins — the Stock self-join and the two-stream join primitive.

A windowed join keeps, for every join key, the tuples that arrived during the
last ``w`` intervals and matches each incoming tuple against the stored tuples
of the same key (from the opposite stream for a two-stream join, from the same
stream for a self-join).  The state per key is therefore proportional to the
key's frequency — which is exactly why migrating a hot key is expensive and why
the paper's γ index trades computation gain against state volume.

The Stock experiment runs :class:`WindowedSelfJoin` over 3 days of exchange
records keyed by stock id "to find potential high-frequency players with dense
buying and selling behaviour".
"""

from __future__ import annotations

from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.engine.operator import BatchCost, OperatorLogic
from repro.engine.state import KeyedState
from repro.engine.tuples import StreamTuple

__all__ = ["WindowedJoin", "WindowedSelfJoin"]

Key = Hashable


class WindowedJoin(OperatorLogic):
    """Two-stream windowed equi-join (streams ``left`` and ``right``).

    Parameters
    ----------
    window:
        Number of intervals each side's tuples are retained for.
    cost_per_tuple:
        Base probing cost per incoming tuple.
    cost_per_match:
        Additional cost per produced join result (matching is what makes hot
        keys disproportionately expensive).
    state_per_tuple:
        Memory units stored per retained tuple.
    match_factor:
        Fluid-model estimate of how many stored tuples an incoming tuple
        matches, as a fraction of the key's retained tuples.  1.0 reproduces a
        full equi-join on the key.
    left_stream / right_stream:
        Stream names recognised by the event-level API.
    """

    name = "windowed-join"
    stateful = True

    def __init__(
        self,
        window: int = 1,
        cost_per_tuple: float = 1.0,
        cost_per_match: float = 0.1,
        state_per_tuple: float = 1.0,
        match_factor: float = 1.0,
        left_stream: str = "left",
        right_stream: str = "right",
    ) -> None:
        if cost_per_tuple <= 0:
            raise ValueError("cost_per_tuple must be positive")
        if cost_per_match < 0 or state_per_tuple < 0 or match_factor < 0:
            raise ValueError("join cost/state parameters must be non-negative")
        self.window = int(window)
        self.cost_per_tuple = float(cost_per_tuple)
        self.cost_per_match = float(cost_per_match)
        self.state_per_tuple = float(state_per_tuple)
        self.match_factor = float(match_factor)
        self.left_stream = left_stream
        self.right_stream = right_stream
        #: Rolling estimate of the average number of retained tuples per key,
        #: used by the fluid cost model (updated by the simulator's statistics).
        self._avg_window_occupancy = 1.0

    # -- fluid model -----------------------------------------------------------------

    def tuple_cost(self, key: Key, value: Any = None) -> float:
        probing = self.cost_per_match * self._avg_window_occupancy * self.match_factor
        return self.cost_per_tuple + probing

    def batch_cost(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        # Affine in the (batch-constant) window occupancy: still one scalar.
        return self.tuple_cost(None)

    def state_delta(self, key: Key, value: Any = None) -> float:
        return self.state_per_tuple

    def batch_state_delta(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        return self.state_per_tuple

    def observe_occupancy(self, average_tuples_per_key: float) -> None:
        """Let the workload/simulator update the expected probe fan-out."""
        if average_tuples_per_key < 0:
            raise ValueError("average_tuples_per_key must be non-negative")
        self._avg_window_occupancy = float(average_tuples_per_key)

    # -- event-level model -----------------------------------------------------------------

    def _sides(self, payload: Optional[Dict[str, List[Any]]]) -> Dict[str, List[Any]]:
        return {"left": [], "right": [], **(payload or {})}

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        side = "left" if tup.stream == self.left_stream else "right"
        other = "right" if side == "left" else "left"

        stored = self._sides(state.latest_payload(tup.key))
        matches = []
        # A tuple joins with every retained tuple of the opposite side, across
        # all retained intervals.
        for payload in state.payloads(tup.key):
            sides = self._sides(payload)
            matches.extend(sides[other])

        def update(old: Optional[Dict[str, List[Any]]]) -> Dict[str, List[Any]]:
            sides = self._sides(old)
            sides[side] = sides[side] + [tup.value]
            return sides

        state.accumulate(
            tup.key, tup.interval, self.state_per_tuple, payload_update=update
        )
        del stored  # only needed the structure; matches drive the outputs
        return [
            StreamTuple(
                key=tup.key,
                value=(tup.value, match),
                interval=tup.interval,
                stream="joined",
            )
            for match in matches
        ]


class WindowedSelfJoin(WindowedJoin):
    """Self-join over one stream (the Stock topology).

    Every incoming tuple is matched against *all* retained tuples of the same
    key (buy/sell records of the same stock inside the window).
    """

    name = "windowed-self-join"

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        matches: List[Any] = []
        for payload in state.payloads(tup.key):
            sides = self._sides(payload)
            matches.extend(sides["left"])

        def update(old: Optional[Dict[str, List[Any]]]) -> Dict[str, List[Any]]:
            sides = self._sides(old)
            sides["left"] = sides["left"] + [tup.value]
            return sides

        state.accumulate(
            tup.key, tup.interval, self.state_per_tuple, payload_update=update
        )
        return [
            StreamTuple(
                key=tup.key,
                value=(tup.value, match),
                interval=tup.interval,
                stream="joined",
            )
            for match in matches
        ]
