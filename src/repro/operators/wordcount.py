"""Word count — the operator run on the Social workload (Fig. 14(a), 15(a)).

The operator continuously maintains, per topic word, the number of appearances
in the feeds of the current window.  It is the canonical cheap stateful
operator: unit processing cost per tuple, and a small constant amount of state
per key per interval (the counter plus the recent tuples kept for the windowed
count).
"""

from __future__ import annotations

from typing import Any, Hashable, List, Optional, Sequence, Tuple

from repro.engine.operator import BatchCost, OperatorLogic
from repro.engine.state import KeyedState
from repro.engine.tuples import StreamTuple

__all__ = ["WordCountOperator"]

Key = Hashable


def _increment(old: Optional[int]) -> int:
    """Payload update of one appearance (module-level: no per-tuple closure)."""
    return (old or 0) + 1


class WordCountOperator(OperatorLogic):
    """Continuously updated per-word appearance counts over a sliding window.

    Parameters
    ----------
    window:
        Number of intervals of history retained per word.
    cost_per_tuple:
        CPU cost units per tuple (1.0 = the unit the capacity model uses).
    state_per_tuple:
        Memory units added per tuple; word count keeps the tuple reference for
        the windowed count, so the default is 1 unit per tuple.
    emit_updates:
        When True the event-level :meth:`process` emits ``(word, count)``
        update tuples downstream (as the Storm topology does); otherwise the
        operator is a sink.
    """

    name = "wordcount"
    stateful = True

    def __init__(
        self,
        window: int = 1,
        cost_per_tuple: float = 1.0,
        state_per_tuple: float = 1.0,
        emit_updates: bool = True,
    ) -> None:
        if cost_per_tuple <= 0:
            raise ValueError("cost_per_tuple must be positive")
        if state_per_tuple < 0:
            raise ValueError("state_per_tuple must be non-negative")
        self.window = int(window)
        self.cost_per_tuple = float(cost_per_tuple)
        self.state_per_tuple = float(state_per_tuple)
        self.emit_updates = bool(emit_updates)

    # -- fluid model ------------------------------------------------------------

    def tuple_cost(self, key: Key, value: Any = None) -> float:
        return self.cost_per_tuple

    def batch_cost(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        # Constant cost model: one scalar covers the whole batch.
        return self.cost_per_tuple

    def state_delta(self, key: Key, value: Any = None) -> float:
        return self.state_per_tuple

    def batch_state_delta(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        return self.state_per_tuple

    # -- event-level model ----------------------------------------------------------

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        count = state.accumulate(
            tup.key, tup.interval, self.state_per_tuple, payload_update=_increment
        )
        if not self.emit_updates:
            return []
        return [StreamTuple(key=tup.key, value=count, interval=tup.interval, stream="counts")]

    def process_batch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: int,
        state: KeyedState,
        task_id: int,
    ) -> Tuple[List[Key], List[Any]]:
        accumulate = state.accumulate
        state_per_tuple = self.state_per_tuple
        if not self.emit_updates:
            for key in keys:
                accumulate(key, interval, state_per_tuple, payload_update=_increment)
            return [], []
        counts = [
            accumulate(key, interval, state_per_tuple, payload_update=_increment)
            for key in keys
        ]
        return list(keys), counts

    def windowed_count(self, state: KeyedState, key: Key) -> int:
        """Total appearances of ``key`` across the retained window."""
        return int(sum(state.payloads(key)))

    # -- PKG support -------------------------------------------------------------------

    def merge_overhead(self, distinct_partials: int) -> float:
        """Cost of merging split-key partial counts (one unit per partial)."""
        return float(distinct_partials)
