"""Windowed key aggregation, with and without key splitting.

Two execution modes are provided:

* :class:`WindowedAggregate` — the key-contiguous version: every tuple of a key
  is processed by a single task, which maintains the full aggregate for the
  window.  This is the mode the mixed-routing strategies use.
* :class:`PartialWindowedAggregate` + :class:`MergeOperator` — the split-key
  version required by PKG (Fig. 2(a) of the paper): each task only holds a
  *partial* aggregate for the keys it happens to receive, and a downstream
  merge operator combines the partials every ``merge_period`` milliseconds.
  The merge stage is what costs PKG its extra latency and throughput in the
  paper's comparison.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.engine.operator import BatchCost, OperatorLogic
from repro.engine.state import KeyedState
from repro.engine.tuples import StreamTuple

__all__ = ["WindowedAggregate", "PartialWindowedAggregate", "MergeOperator"]

Key = Hashable
Reducer = Callable[[Any, Any], Any]


def _default_reducer(accumulator: Any, value: Any) -> Any:
    """Sum-like reduction treating ``None`` as the identity."""
    if accumulator is None:
        return value if value is not None else 1
    if value is None:
        return accumulator + 1
    return accumulator + value


class WindowedAggregate(OperatorLogic):
    """Key-contiguous aggregation over a sliding window.

    Parameters
    ----------
    reducer:
        Function folding a tuple's value into the per-key accumulator.
    window:
        Intervals of state retained.
    cost_per_tuple / state_per_tuple:
        Fluid-model coefficients.
    """

    name = "windowed-aggregate"
    stateful = True

    def __init__(
        self,
        reducer: Optional[Reducer] = None,
        window: int = 1,
        cost_per_tuple: float = 1.0,
        state_per_tuple: float = 1.0,
    ) -> None:
        if cost_per_tuple <= 0:
            raise ValueError("cost_per_tuple must be positive")
        if state_per_tuple < 0:
            raise ValueError("state_per_tuple must be non-negative")
        self.reducer = reducer if reducer is not None else _default_reducer
        self.window = int(window)
        self.cost_per_tuple = float(cost_per_tuple)
        self.state_per_tuple = float(state_per_tuple)

    def tuple_cost(self, key: Key, value: Any = None) -> float:
        return self.cost_per_tuple

    def batch_cost(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        # Constant cost model: one scalar covers the whole batch.
        return self.cost_per_tuple

    def state_delta(self, key: Key, value: Any = None) -> float:
        return self.state_per_tuple

    def batch_state_delta(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        return self.state_per_tuple

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        aggregate = state.accumulate(
            tup.key,
            tup.interval,
            self.state_per_tuple,
            payload_update=lambda old: self.reducer(old, tup.value),
        )
        return [
            StreamTuple(key=tup.key, value=aggregate, interval=tup.interval, stream="aggregates")
        ]

    def process_batch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: int,
        state: KeyedState,
        task_id: int,
    ) -> Tuple[List[Key], List[Any]]:
        accumulate = state.accumulate
        reducer = self.reducer
        state_per_tuple = self.state_per_tuple
        out_values: List[Any] = []
        append = out_values.append
        for key, value in zip(keys, values):
            append(
                accumulate(
                    key,
                    interval,
                    state_per_tuple,
                    payload_update=lambda old, value=value: reducer(old, value),
                )
            )
        return list(keys), out_values

    def windowed_value(self, state: KeyedState, key: Key) -> Any:
        """Fold the per-interval aggregates of ``key`` across the window."""
        result: Any = None
        for payload in state.payloads(key):
            result = self.reducer(result, payload)
        return result


class PartialWindowedAggregate(WindowedAggregate):
    """The upstream half of the PKG execution mode.

    Behaviourally identical to :class:`WindowedAggregate`, but each task only
    sees the share of a key's tuples the splitter routed to it, so its state is
    a *partial* aggregate.  Emitted tuples are tagged with the producing task
    so the merger can deduplicate.

    ``source_tag`` labels the *stage* producing the partial: in a DAG whose
    merge stage fans in from several split stages, task ids collide across
    stages, so each branch tags its partials ``(source_tag, task_id)`` and the
    merger keeps one slot per (stage, task) instead of overwriting a sibling
    branch's partial.
    """

    name = "partial-aggregate"
    mergeable = True

    def __init__(
        self,
        reducer: Optional[Reducer] = None,
        window: int = 1,
        cost_per_tuple: float = 1.0,
        state_per_tuple: float = 1.0,
        source_tag: str = "",
    ) -> None:
        super().__init__(
            reducer=reducer,
            window=window,
            cost_per_tuple=cost_per_tuple,
            state_per_tuple=state_per_tuple,
        )
        self.source_tag = source_tag

    def _partial_id(self, task_id: int) -> Any:
        return (self.source_tag, task_id) if self.source_tag else task_id

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        partial = state.accumulate(
            tup.key,
            tup.interval,
            self.state_per_tuple,
            payload_update=lambda old: self.reducer(old, tup.value),
        )
        return [
            StreamTuple(
                key=tup.key,
                value=(self._partial_id(task_id), partial),
                interval=tup.interval,
                stream="partials",
            )
        ]

    def process_batch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: int,
        state: KeyedState,
        task_id: int,
    ) -> Tuple[List[Key], List[Any]]:
        # Same loop as the parent, but emissions are tagged with the
        # producing task so the downstream merger can deduplicate.
        accumulate = state.accumulate
        reducer = self.reducer
        state_per_tuple = self.state_per_tuple
        partial_id = self._partial_id(task_id)
        out_values: List[Any] = []
        append = out_values.append
        for key, value in zip(keys, values):
            partial = accumulate(
                key,
                interval,
                state_per_tuple,
                payload_update=lambda old, value=value: reducer(old, value),
            )
            append((partial_id, partial))
        return list(keys), out_values

    def merge(self, key: Key, partials: Sequence[Any]) -> Any:
        """Fold split-key partials of ``key`` with the aggregate's reducer."""
        result: Any = None
        for partial in partials:
            result = self.reducer(result, partial)
        return result

    def merge_overhead(self, distinct_partials: int) -> float:
        # One merge unit of work per (key, task) partial produced this interval.
        return float(distinct_partials)


class MergeOperator(OperatorLogic):
    """Downstream merger combining the partial aggregates of a key.

    Keys are routed to the merger by plain hashing (every partial of a key must
    meet at a single merger task), so the merger itself is a stateful
    key-contiguous operator — the extra hop PKG cannot avoid.  Partials arrive
    as ``(partial_id, partial)`` pairs; the id is the producing task, or a
    ``(source_tag, task_id)`` pair when several split stages fan in to the
    merger, so sibling branches never overwrite each other's slot.
    """

    name = "merge"
    stateful = True
    mergeable = True

    def __init__(
        self,
        reducer: Optional[Reducer] = None,
        window: int = 1,
        cost_per_partial: float = 1.0,
    ) -> None:
        if cost_per_partial <= 0:
            raise ValueError("cost_per_partial must be positive")
        self.reducer = reducer if reducer is not None else _default_reducer
        self.window = int(window)
        self.cost_per_partial = float(cost_per_partial)

    def tuple_cost(self, key: Key, value: Any = None) -> float:
        return self.cost_per_partial

    def batch_cost(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        return self.cost_per_partial

    def state_delta(self, key: Key, value: Any = None) -> float:
        # The merger only keeps the combined aggregate per key, not the tuples.
        return 0.1

    def batch_state_delta(
        self, keys: Sequence[Key], values: Optional[Sequence[Any]] = None
    ) -> BatchCost:
        return self.state_delta(None)

    def merge(self, key: Key, partials: Sequence[Any]) -> Any:
        """Fold the collected per-producer partials of ``key`` into one value."""
        combined: Any = None
        for value in partials:
            combined = self.reducer(combined, value)
        return combined

    def _absorb(
        self, key: Key, value: Any, interval: int, state: KeyedState
    ) -> Any:
        if isinstance(value, tuple) and len(value) == 2:
            source, partial = value
        else:  # plain value (e.g. unit test feeding raw numbers)
            source, partial = 0, value

        def update(old: Optional[Dict[Any, Any]]) -> Dict[Any, Any]:
            merged = dict(old) if old else {}
            merged[source] = partial
            return merged

        partials = state.accumulate(
            key, interval, self.state_delta(key), payload_update=update
        )
        return self.merge(key, list(partials.values()))

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        combined = self._absorb(tup.key, tup.value, tup.interval, state)
        return [
            StreamTuple(key=tup.key, value=combined, interval=tup.interval, stream="merged")
        ]

    def process_batch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: int,
        state: KeyedState,
        task_id: int,
    ) -> Tuple[List[Key], List[Any]]:
        absorb = self._absorb
        out_values = [absorb(key, value, interval, state) for key, value in zip(keys, values)]
        return list(keys), out_values
