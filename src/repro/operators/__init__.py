"""Stateful operators used by the paper's workloads.

* :mod:`repro.operators.wordcount` — the Social-feed word-count topology
  (continuously maintained per-word appearance counts).
* :mod:`repro.operators.windowed_aggregate` — generic windowed key aggregation,
  including the partial-aggregate + merge pair that PKG requires.
* :mod:`repro.operators.windowed_join` — windowed equi-join and the self-join
  run on the Stock workload.
* :mod:`repro.operators.tpch_q5` — the continuous TPC-H Q5 pipeline (chained
  windowed joins + revenue aggregation) used for the Fig. 16 experiment.
"""

from repro.operators.tpch_q5 import Q5Stage, build_q5_topology
from repro.operators.windowed_aggregate import (
    MergeOperator,
    PartialWindowedAggregate,
    WindowedAggregate,
)
from repro.operators.windowed_join import WindowedJoin, WindowedSelfJoin
from repro.operators.wordcount import WordCountOperator

__all__ = [
    "MergeOperator",
    "PartialWindowedAggregate",
    "Q5Stage",
    "WindowedAggregate",
    "WindowedJoin",
    "WindowedSelfJoin",
    "WordCountOperator",
    "build_q5_topology",
]
