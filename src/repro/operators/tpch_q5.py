"""Continuous TPC-H Q5 — the multi-join topology of the Fig. 16 experiment.

Q5 ("local supplier volume") joins lineitem ⋈ orders ⋈ customer ⋈ supplier ⋈
nation ⋈ region and aggregates revenue per nation.  Revised into a continuous
query over a sliding window, it becomes a chain of keyed, stateful operators:

1. ``order-join``   — lineitems keyed by *order key* join the order/customer
   dimension (windowed state per order key);
2. ``customer-join`` — results re-keyed by *customer key* join the customer/
   nation dimension;
3. ``revenue-agg``   — results re-keyed by *nation key* are aggregated into the
   per-nation revenue of the window.

The foreign-key skew injected by the generator makes the first two joins
imbalanced; because they are chained, a slow task in the first join starves the
second one ("the data imbalance slows down the previous join operator … and
suspends the processing on downstream join operators"), which is exactly the
effect the experiment measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.baselines.base import Partitioner
from repro.engine.operator import OperatorLogic
from repro.engine.state import KeyedState
from repro.engine.topology import Topology, TopologyBuilder
from repro.engine.tuples import StreamTuple
from repro.operators.windowed_aggregate import WindowedAggregate
from repro.operators.windowed_join import WindowedJoin
from repro.workloads.tpch import TPCHDataset

__all__ = [
    "Q5Stage",
    "DimensionJoin",
    "build_q5_topology",
    "q5_revenue_of",
    "q5_revenue_reducer",
]

Key = Hashable

#: Factory signature: (stage name, parallelism) -> partitioner for that stage.
PartitionerFactory = Callable[[str, int], Partitioner]


@dataclass(frozen=True)
class Q5Stage:
    """Names of the three stages of the continuous Q5 topology."""

    ORDER_JOIN: str = "order-join"
    CUSTOMER_JOIN: str = "customer-join"
    REVENUE_AGG: str = "revenue-agg"


class DimensionJoin(WindowedJoin):
    """Windowed join of a stream against a static dimension lookup.

    The streaming side keeps its tuples in windowed state (so key migration has
    a real cost); the dimension side is a broadcast lookup table (as a real
    deployment would hold the small TPC-H dimensions replicated on every task).
    The event-level output enriches the tuple with the dimension attributes.
    """

    name = "dimension-join"
    stateful = True

    def __init__(
        self,
        lookup: Callable[[Key], Any],
        window: int = 1,
        cost_per_tuple: float = 1.0,
        cost_per_match: float = 0.05,
        state_per_tuple: float = 1.0,
    ) -> None:
        super().__init__(
            window=window,
            cost_per_tuple=cost_per_tuple,
            cost_per_match=cost_per_match,
            state_per_tuple=state_per_tuple,
        )
        self.lookup = lookup

    def process(
        self, tup: StreamTuple, state: KeyedState, task_id: int
    ) -> List[StreamTuple]:
        # Keep the streaming tuple in the window (join state) and emit it
        # enriched with the dimension attribute.
        def update(old: Optional[List[Any]]) -> List[Any]:
            return (old or []) + [tup.value]

        state.accumulate(
            tup.key, tup.interval, self.state_per_tuple, payload_update=update
        )
        enriched = (tup.value, self.lookup(tup.key))
        return [
            StreamTuple(key=tup.key, value=enriched, interval=tup.interval, stream="joined")
        ]

    def process_batch(
        self,
        keys: Sequence[Key],
        values: Sequence[Any],
        interval: int,
        state: KeyedState,
        task_id: int,
    ) -> Tuple[List[Key], List[Any]]:
        accumulate = state.accumulate
        lookup = self.lookup
        state_per_tuple = self.state_per_tuple
        out_values: List[Any] = []
        append = out_values.append
        for key, value in zip(keys, values):
            accumulate(
                key,
                interval,
                state_per_tuple,
                payload_update=lambda old, value=value: (old or []) + [value],
            )
            append((value, lookup(key)))
        return list(keys), out_values


def q5_revenue_of(value: Any) -> float:
    """The revenue carried by a Q5 chain tuple, whatever stage it left.

    Each :class:`DimensionJoin` wraps the incoming value as ``(value,
    dimension_attribute)``, so after the two joins the lineitem's revenue
    (``extendedprice × (1 − discount)``) is the innermost element.  Module
    level (not a lambda/closure) so the revenue-aggregation stage pickles
    under any multiprocessing start method.
    """
    while isinstance(value, tuple):
        value = value[0]
    return float(value) if value is not None else 0.0


def q5_revenue_reducer(accumulator: Any, value: Any) -> float:
    """Reducer for the revenue-agg stage: per-nation revenue of the window."""
    return (accumulator or 0.0) + q5_revenue_of(value)


def build_q5_topology(
    dataset: TPCHDataset,
    partitioner_factory: PartitionerFactory,
    *,
    parallelism: int = 10,
    window: int = 5,
    aggregate_parallelism: Optional[int] = None,
    spout_parallelism: int = 10,
) -> Topology:
    """Assemble the continuous Q5 pipeline.

    Parameters
    ----------
    dataset:
        The TPC-H slice providing the foreign-key mappings used to re-key the
        stream between stages.
    partitioner_factory:
        Called once per stage with ``(stage_name, parallelism)``; lets the
        caller choose the strategy under test for the join stages while the
        final (tiny, 25-key) aggregation typically keeps plain hashing.
    parallelism:
        Task count of the two join stages (the operators under study).
    window:
        Sliding-window length in intervals (the paper uses a 5-minute window
        with 1-minute intervals).
    aggregate_parallelism:
        Task count of the revenue aggregation (defaults to ``min(parallelism,
        5)`` — the nation key domain is only 25 keys).
    """
    if parallelism <= 0:
        raise ValueError("parallelism must be positive")
    if aggregate_parallelism is None:
        aggregate_parallelism = max(1, min(parallelism, 5))

    stages = Q5Stage()
    order_join = DimensionJoin(
        lookup=dataset.customer_of_order,
        window=window,
        cost_per_tuple=1.0,
        cost_per_match=0.05,
    )
    customer_join = DimensionJoin(
        lookup=dataset.nation_of_customer,
        window=window,
        cost_per_tuple=1.0,
        cost_per_match=0.05,
    )
    revenue = WindowedAggregate(window=window, cost_per_tuple=0.5, state_per_tuple=0.1)
    revenue.name = "q5-revenue"

    builder = TopologyBuilder("tpch-q5", spout_parallelism=spout_parallelism)
    builder.add_stage(
        stages.ORDER_JOIN,
        order_join,
        partitioner_factory(stages.ORDER_JOIN, parallelism),
        selectivity=1.0,
        key_mapper=dataset.customer_of_order,
    )
    builder.add_stage(
        stages.CUSTOMER_JOIN,
        customer_join,
        partitioner_factory(stages.CUSTOMER_JOIN, parallelism),
        selectivity=1.0,
        key_mapper=dataset.nation_of_customer,
    )
    builder.add_stage(
        stages.REVENUE_AGG,
        revenue,
        partitioner_factory(stages.REVENUE_AGG, aggregate_parallelism),
        selectivity=1.0,
    )
    return builder.build()
