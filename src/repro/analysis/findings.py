"""Finding records, inline suppressions, and the JSON baseline file.

A :class:`Finding` is one rule hit at one source location.  Two escape
hatches keep the checker adoptable without weakening it:

* **Inline suppression** — a ``# repro-lint: ignore[RPL001,RPL002]`` comment
  (or a bare ``# repro-lint: ignore``) on the offending line silences the
  named rules (or all rules) for that line only.
* **Baseline file** — a JSON file of known-finding keys
  (``{"version": 1, "findings": ["path::RULE::message", ...]}``) grandfathers
  existing debt; ``--strict`` ignores the baseline so CI can demand a clean
  tree.  Keys are content-addressed (no line numbers), so unrelated edits
  don't churn the baseline.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Set

__all__ = [
    "Baseline",
    "Finding",
    "parse_suppressions",
]

#: ``# repro-lint: ignore`` or ``# repro-lint: ignore[RPL001, RPL002]``.
_SUPPRESSION_RE = re.compile(
    r"#\s*repro-lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?"
)

#: Sentinel rule set meaning "every rule is suppressed on this line".
ALL_RULES_SENTINEL = frozenset({"*"})


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    @property
    def key(self) -> str:
        """Content-addressed identity used by the baseline file."""
        return f"{self.path}::{self.rule}::{self.message}"

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }


def parse_suppressions(source: str) -> Dict[int, Set[str]]:
    """Map line number -> set of suppressed rule IDs (``{"*"}`` = all)."""
    suppressions: Dict[int, Set[str]] = {}
    for number, text in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rules = match.group("rules")
        if rules is None:
            suppressions[number] = set(ALL_RULES_SENTINEL)
        else:
            suppressions[number] = {
                rule.strip() for rule in rules.split(",") if rule.strip()
            }
    return suppressions


class Baseline:
    """Known-findings ledger: grandfather existing debt, flag new debt.

    The ledger counts duplicate keys, so two *new* instances of an already
    baselined finding pattern still fail the gate — the baseline absorbs at
    most as many occurrences of a key as were recorded.
    """

    VERSION = 1

    def __init__(self, counts: Dict[str, int] | None = None):
        self._counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} in {path}"
            )
        counts: Dict[str, int] = {}
        for key in data.get("findings", []):
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for finding in findings:
            counts[finding.key] = counts.get(finding.key, 0) + 1
        return cls(counts)

    def save(self, path: Path) -> None:
        keys: List[str] = []
        for key in sorted(self._counts):
            keys.extend([key] * self._counts[key])
        path.write_text(
            json.dumps({"version": self.VERSION, "findings": keys}, indent=2)
            + "\n"
        )

    def filter_new(self, findings: Sequence[Finding]) -> List[Finding]:
        """Return the findings not absorbed by the baseline, oldest-first."""
        remaining = dict(self._counts)
        fresh: List[Finding] = []
        for finding in findings:
            if remaining.get(finding.key, 0) > 0:
                remaining[finding.key] -= 1
            else:
                fresh.append(finding)
        return fresh
