"""The runtime protocol sanitizer: dynamic invariant checks on a live topology.

TSan-style opt-in instrumentation (``REPRO_SANITIZE=1`` or ``repro bench
--sanitize``): the coordinator wraps each stage's worker queues, router and
controller with checks asserting the same protocol invariants the static
rules (:mod:`repro.analysis.rules`) pin at the source level —

* **message_type** — every object crossing a process boundary is a type
  registered in :mod:`repro.runtime.messages` (the dynamic RPL001);
* **watermark** — interval markers are strictly monotone, both per worker
  queue (``EndInterval`` sends) and at the coordinator's interval close;
* **put_after_close** — nothing is sent to a worker after its
  ``EndOfStream``;
* **pause_resume** — pauses and resumes pair up, and no pause is left
  outstanding at the end of the run (the dynamic RPL003);
* **conservation** — tuples offered = enqueued to workers + shed, and
  tuples processed = enqueued (reusing the router/worker parity
  accounting): a leak or double-count anywhere in the
  dispatch/pause-buffer/shed plumbing shows up as an imbalance here;
* **fan_in_watermark** — on a DAG consumer, accepted upstream marks advance
  strictly per ``(origin, producer)`` edge, and no interval closes before
  *every* upstream origin marked it (an independent re-check of the stage
  loop's multi-origin mark barrier);
* **fan_in_conservation** — the per-origin ingress tuple counts (after
  replay dedup) sum to the stage's dispatch-side offered total, so a
  fan-in funnel neither loses nor double-counts an edge's tuples.

Violations are *recorded*, never raised: a sanitized bench completes and
reports, exactly so the checker can ride along in CI without turning an
accounting bug into a wedged pipeline.  The wrappers add two attribute
lookups and an isinstance per message send — negligible against the pickling
cost of the send itself — so a sanitized run's numbers remain representative.
"""

from __future__ import annotations

import threading
from collections import Counter
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set

__all__ = [
    "SanitizedQueue",
    "SanitizerReport",
    "StageSanitizer",
    "Violation",
]


@dataclass(frozen=True)
class Violation:
    """One observed protocol-invariant breach."""

    check: str
    stage: str
    message: str
    interval: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        data: Dict[str, Any] = {
            "check": self.check,
            "stage": self.stage,
            "message": self.message,
        }
        if self.interval is not None:
            data["interval"] = self.interval
        return data


class SanitizerReport:
    """Thread-safe collector shared by every stage of one sanitized run.

    ``checks`` counts how many times each invariant was *evaluated* — a
    clean report with zero checks means the sanitizer never engaged, which
    the bench validator treats as its own failure.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._violations: List[Violation] = []
        self._checks: Counter = Counter()

    def record(self, violation: Violation) -> None:
        with self._lock:
            self._violations.append(violation)

    def count_check(self, check: str, amount: int = 1) -> None:
        with self._lock:
            self._checks[check] += amount

    @property
    def violations(self) -> List[Violation]:
        with self._lock:
            return list(self._violations)

    @property
    def ok(self) -> bool:
        with self._lock:
            return not self._violations

    def to_dict(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "enabled": True,
                "ok": not self._violations,
                "checks": dict(self._checks),
                "violations": [v.to_dict() for v in self._violations],
            }


def _message_registry() -> Set[str]:
    from repro.runtime import messages

    return set(messages.__all__)


class StageSanitizer:
    """Per-stage monitor: all hooks run on the stage's router thread."""

    def __init__(
        self,
        stage: str,
        report: SanitizerReport,
        message_types: Optional[Set[str]] = None,
        origins: Optional[Sequence[str]] = None,
    ) -> None:
        self.stage = stage
        self.report = report
        self._registry = (
            message_types if message_types is not None else _message_registry()
        )
        #: Declared upstream edges of the stage (``None`` = learn them from
        #: the marks actually observed — single-stage and unit-test use).
        self._origins: Optional[Set[str]] = (
            set(origins) if origins is not None else None
        )
        #: Last EndInterval sent per task (strict monotonicity).
        self._last_marker: Dict[int, int] = {}
        #: Tasks whose EndOfStream already went out.
        self._closed_tasks: Set[int] = set()
        #: Last coordinator-side interval close.
        self._last_closed: Optional[int] = None
        #: Outstanding pauses (pause() calls minus resume() calls).
        self._pause_depth = 0
        #: Tuples enqueued onto worker queues (TupleBatch payload sizes).
        self._enqueued = 0
        #: Ingress tuples accepted per upstream origin (post replay-dedup).
        self._received: Dict[str, int] = {}
        #: Last accepted upstream-mark interval per (origin, producer).
        self._edge_marks: Dict[Any, int] = {}
        #: Origins whose mark arrived per still-open interval.
        self._interval_origins: Dict[int, Set[str]] = {}
        #: True while the supervisor replays a retention log: replayed
        #: batches were already counted when first enqueued, so counting
        #: them again would break end-of-run conservation.
        self._replaying = False

    def _violate(
        self, check: str, message: str, interval: Optional[int] = None
    ) -> None:
        self.report.record(
            Violation(
                check=check, stage=self.stage, message=message, interval=interval
            )
        )

    # -- queue sends -----------------------------------------------------

    def on_send(self, task: int, message: Any) -> None:
        """Called after each successful put onto worker ``task``'s queue."""
        type_name = type(message).__name__
        self.report.count_check("message_type")
        if type_name not in self._registry:
            self._violate(
                "message_type",
                f"unregistered message type {type_name!r} sent to task {task}",
            )
        if task in self._closed_tasks:
            self.report.count_check("put_after_close")
            self._violate(
                "put_after_close",
                f"{type_name} sent to task {task} after its EndOfStream",
            )
        interval = getattr(message, "interval", None)
        if type_name == "EndInterval" and interval is not None:
            self.report.count_check("watermark")
            last = self._last_marker.get(task)
            if last is not None and interval <= last:
                self._violate(
                    "watermark",
                    f"EndInterval marker went backwards on task {task}: "
                    f"{interval} after {last}",
                    interval=interval,
                )
            self._last_marker[task] = interval
        if type_name == "EndOfStream":
            self._closed_tasks.add(task)
        keys = getattr(message, "keys", None)
        if type_name == "TupleBatch" and keys is not None and not self._replaying:
            self._enqueued += len(keys)

    # -- fan-in ingress ---------------------------------------------------

    def on_ingress_batch(self, origin: str, count: int) -> None:
        """Called for each accepted (post replay-dedup) ingress batch.

        The per-origin totals reconcile against the router's dispatch-side
        offered count at :meth:`finalize` — the multi-upstream conservation
        book.
        """
        self._received[origin] = self._received.get(origin, 0) + int(count)

    def on_upstream_mark(self, origin: str, producer: int, interval: int) -> None:
        """Called for each *accepted* upstream mark (post floor-dedup).

        Independently re-checks the stage loop's barrier dedup — an accepted
        mark must strictly advance its ``(origin, producer)`` edge — and
        records which origins marked the interval, so :meth:`on_close` can
        verify no interval closes with an upstream origin still unheard.
        """
        self.report.count_check("fan_in_watermark")
        if self._origins is not None and origin not in self._origins:
            self._violate(
                "fan_in_watermark",
                f"mark from undeclared upstream origin {origin!r} "
                f"(declared: {sorted(self._origins)})",
                interval=interval,
            )
        edge = (origin, producer)
        last = self._edge_marks.get(edge)
        if last is not None and interval <= last:
            self._violate(
                "fan_in_watermark",
                f"accepted upstream mark went backwards on edge "
                f"{origin}:{producer}: {interval} after {last}",
                interval=interval,
            )
        self._edge_marks[edge] = interval
        self._interval_origins.setdefault(interval, set()).add(origin)

    # -- supervised recovery ---------------------------------------------

    def on_respawn(self, task: int) -> None:
        """A dead worker was respawned on ``task``'s queue.

        The fresh process rebuilds its watermark from the checkpoint and the
        replayed markers, so the per-task marker history restarts — replayed
        ``EndInterval`` markers are monotone among themselves but precede
        the markers already seen on the old incarnation.
        """
        self.report.count_check("recovery")
        self._last_marker.pop(task, None)
        self._closed_tasks.discard(task)

    def begin_replay(self) -> None:
        """Suppress enqueue counting while a retention log replays."""
        self._replaying = True

    def end_replay(self) -> None:
        self._replaying = False

    # -- coordinator interval close --------------------------------------

    def on_close(self, interval: int) -> None:
        self.report.count_check("watermark")
        if self._last_closed is not None and interval <= self._last_closed:
            self._violate(
                "watermark",
                f"interval close went backwards: {interval} after "
                f"{self._last_closed}",
                interval=interval,
            )
        self._last_closed = interval
        marked = self._interval_origins.pop(interval, set())
        if self._origins is not None:
            self.report.count_check("fan_in_watermark")
            missing = self._origins - marked
            if missing:
                self._violate(
                    "fan_in_watermark",
                    f"interval {interval} closed before upstream origin(s) "
                    f"{sorted(missing)} marked it",
                    interval=interval,
                )

    # -- pause/resume ----------------------------------------------------

    def on_pause(self, keys: Any) -> None:
        self.report.count_check("pause_resume")
        self._pause_depth += 1

    def on_resume(self) -> None:
        self.report.count_check("pause_resume")
        if self._pause_depth <= 0:
            self._violate(
                "pause_resume", "resume() without a matching pause()"
            )
        else:
            self._pause_depth -= 1

    def wrap_router(self, router: Any) -> None:
        """Shadow the router's pause/resume with monitored versions."""
        inner_pause = router.pause
        inner_resume = router.resume
        sanitizer = self

        def pause(keys: Any) -> Any:
            sanitizer.on_pause(keys)
            return inner_pause(keys)

        def resume() -> Any:
            sanitizer.on_resume()
            return inner_resume()

        router.pause = pause
        router.resume = resume

    # -- end-of-run conservation -----------------------------------------

    def finalize(self, offered: float, processed: float, shed: float) -> None:
        """Close the books: pause pairing and tuple conservation.

        ``offered`` is the router's per-interval dispatch accounting,
        ``processed`` the workers' final-report sum, ``shed`` the shed
        ledger; the sanitizer's own ``enqueued`` count (successful
        ``TupleBatch`` puts) must reconcile both sides:
        ``offered = enqueued + shed`` and ``processed = enqueued``.
        """
        self.report.count_check("pause_resume")
        if self._pause_depth > 0:
            self._violate(
                "pause_resume",
                f"{self._pause_depth} pause(s) never resumed by end of run",
            )
        self.report.count_check("conservation", 2)
        if round(offered) != round(self._enqueued + shed):
            self._violate(
                "conservation",
                f"offered {offered:g} != enqueued {self._enqueued} + "
                f"shed {shed:g}",
            )
        if round(processed) != self._enqueued:
            self._violate(
                "conservation",
                f"processed {processed:g} != enqueued {self._enqueued}",
            )
        if self._received:
            # Multi-upstream conservation: every edge's accepted ingress
            # tuples — and nothing else — reached the dispatch accounting.
            self.report.count_check("fan_in_conservation", len(self._received))
            total = sum(self._received.values())
            if round(offered) != total:
                self._violate(
                    "fan_in_conservation",
                    f"per-origin ingress {dict(sorted(self._received.items()))} "
                    f"sums to {total} != offered {offered:g}",
                )


class SanitizedQueue:
    """Worker-queue proxy feeding every send through a :class:`StageSanitizer`.

    Wraps the coordinator-side abort-aware proxy; the monitor hook runs
    *after* a successful put so a shed (timed-out) dispatch is not counted
    as enqueued.
    """

    def __init__(self, abortable: Any, task: int, sanitizer: StageSanitizer):
        self._abortable = abortable
        self._task = task
        self._sanitizer = sanitizer

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        self._abortable.put(item, timeout=timeout)
        self._sanitizer.on_send(self._task, item)
