"""The repo-specific protocol lint rules (RPL001–RPL006).

Each rule is a small :class:`ast.NodeVisitor` with an ID and a docstring
describing the hazard it targets.  The rules are heuristic by design — they
key on the runtime's naming conventions (queue-like receiver names,
``abortable``/``guarded`` proxies, the ``runtime/messages.py`` registry) and
prefer false negatives over false positives: an argument the rule cannot
trace is given the benefit of the doubt.

Rule index
----------
RPL001  cross-process message discipline — only registered message types
        may cross a process boundary.
RPL002  blocking-call discipline — no bare ``get()``/``put(x)`` without a
        timeout on queue-like receivers outside the sanctioned wrappers.
RPL003  pause/resume pairing — every path that pauses keys must reach a
        resume, a pending-migration handoff, or an abort/raise.
RPL004  fork-safety — no module-level mutable state or global RNG mutated
        inside worker-executed functions.
RPL005  subnormal-division family — no ratios over ``average_load`` /
        ``safe_mean`` outputs bypassing ``core/load.py``'s total-based
        guards.
RPL006  atomic checkpoint writes — no bare ``open(..., "w")`` /
        ``write_text``/``write_bytes`` on checkpoint/manifest paths outside
        the ``runtime/resilience/checkpoint.py`` tmp-write + ``os.replace``
        helpers.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.engine import ModuleContext, Project
from repro.analysis.findings import Finding

__all__ = [
    "ALL_RULES",
    "MessageDisciplineRule",
    "BlockingCallRule",
    "PauseResumePairingRule",
    "ForkSafetyRule",
    "LoadRatioRule",
    "AtomicCheckpointWriteRule",
    "Rule",
    "get_rules",
]

#: Receiver-name fragments that mark an object as an inter-process queue.
_QUEUE_HINTS = ("queue", "egress", "ingress", "mailbox")

#: Receiver-name fragments that mark a queue as already abort-aware (the
#: coordinator-side proxies), exempting it from RPL002.
_ABORT_AWARE_HINTS = ("guarded", "abortable", "abort_aware")

#: Global-RNG constructors that are fork-safe (explicitly seeded generator
#: objects, not the shared module-level stream).
_RNG_ALLOWLIST = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "RandomState",
    "PCG64",
    "Philox",
    "getstate",
    "get_state",
}

#: Denominator producers guarded inside core/load.py (RPL005).
_GUARDED_MEANS = {"average_load", "safe_mean"}


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The rightmost identifier of a receiver expression.

    ``self.abortable_queues[task]`` -> ``abortable_queues``;
    ``mailbox`` -> ``mailbox``; ``make_queue()`` -> ``make_queue``.
    """
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    return None


def _attribute_path(node: ast.AST) -> List[str]:
    """``np.random.rand`` -> ``["np", "random", "rand"]`` (empty if not a
    pure attribute chain rooted at a name)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return []


def _is_queueish(name: Optional[str]) -> bool:
    if not name:
        return False
    low = name.lower()
    return any(hint in low for hint in _QUEUE_HINTS)


def _is_abort_aware(name: Optional[str]) -> bool:
    if not name:
        return False
    low = name.lower()
    return any(hint in low for hint in _ABORT_AWARE_HINTS)


class Rule(ast.NodeVisitor):
    """Base class: one rule instance lints one module."""

    rule_id: str = "RPL000"

    def __init__(self, module: ModuleContext, project: Project):
        self.module = module
        self.project = project
        self.findings: List[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(
            Finding(
                rule=self.rule_id,
                path=self.module.relpath,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                message=message,
            )
        )


class MessageDisciplineRule(Rule):
    """RPL001: only registered message types may cross a process boundary.

    An object ``put`` onto an inter-process queue is pickled in one process
    and rebuilt in another; lambdas, closures, and locally-defined classes
    don't survive the trip, and raw dict/list payloads bypass the typed
    protocol in :mod:`repro.runtime.messages`.  The rule checks the payload
    of ``<queueish>.put(payload)`` and ``abortable_put(queue, payload)``:

    * lambdas, dict/set/comprehension literals, and references to nested
      functions are flagged outright;
    * calls to classes defined inside a function body are flagged;
    * in ``repro/runtime`` modules, calls to capitalised constructors not in
      the ``runtime/messages.py`` registry are flagged;
    * names are traced through same-function assignments; anything the rule
      cannot trace passes.
    """

    rule_id = "RPL001"

    _LITERAL_BAD = (ast.Lambda, ast.Dict, ast.DictComp, ast.SetComp)

    def __init__(self, module: ModuleContext, project: Project):
        super().__init__(module, project)
        self._function_stack: List[ast.AST] = []
        self._local_classes: Set[str] = set()
        self._nested_functions: Set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for child in ast.walk(node):
                    if child is node:
                        continue
                    if isinstance(child, ast.ClassDef):
                        self._local_classes.add(child.name)
                    elif isinstance(
                        child, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        self._nested_functions.add(child.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Call(self, node: ast.Call) -> None:
        payload: Optional[ast.expr] = None
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "put"
            and _is_queueish(_terminal_name(node.func.value))
            and node.args
        ):
            payload = node.args[0]
        elif (
            _terminal_name(node.func) == "abortable_put"
            and len(node.args) >= 2
        ):
            payload = node.args[1]
        if payload is not None:
            self._check_payload(payload, node)
        self.generic_visit(node)

    def _check_payload(self, payload: ast.expr, site: ast.Call) -> None:
        verdict = self._classify(payload)
        if verdict is not None:
            self.report(site, verdict)

    def _classify(self, payload: ast.expr) -> Optional[str]:
        if isinstance(payload, self._LITERAL_BAD):
            kind = type(payload).__name__.lower()
            return (
                f"non-message payload ({kind}) put onto an inter-process "
                "queue; use a registered type from runtime/messages.py"
            )
        if isinstance(payload, ast.Name):
            if payload.id in self._nested_functions:
                return (
                    f"closure '{payload.id}' put onto an inter-process "
                    "queue; nested functions do not pickle"
                )
            return self._classify_traced_name(payload.id)
        if isinstance(payload, ast.Call):
            name = _terminal_name(payload.func)
            if name is None:
                return None
            if name in self._local_classes:
                return (
                    f"instance of locally-defined class '{name}' put onto "
                    "an inter-process queue; classes defined inside a "
                    "function do not pickle"
                )
            if name in {"dict", "list", "set"}:
                return (
                    f"raw {name}() payload put onto an inter-process "
                    "queue; use a registered type from runtime/messages.py"
                )
            registry = self.project.message_types()
            if (
                registry
                and name[0].isupper()
                and name not in registry
                and "repro/runtime" in self.module.relpath
            ):
                return (
                    f"'{name}' is not registered in runtime/messages.py; "
                    "cross-process messages must be registered types"
                )
        return None

    def _classify_traced_name(self, name: str) -> Optional[str]:
        """Trace a name through same-function assignments."""
        if not self._function_stack:
            return None
        scope = self._function_stack[-1]
        for node in ast.walk(scope):
            if not isinstance(node, ast.Assign):
                continue
            if not any(
                isinstance(target, ast.Name) and target.id == name
                for target in node.targets
            ):
                continue
            if isinstance(node.value, self._LITERAL_BAD):
                kind = type(node.value).__name__.lower()
                return (
                    f"'{name}' (a {kind}) put onto an inter-process queue; "
                    "use a registered type from runtime/messages.py"
                )
        return None


class BlockingCallRule(Rule):
    """RPL002: no bare blocking ``get()``/``put(x)`` on inter-process queues.

    A timeout-less blocking queue operation waits on a peer process; if that
    peer crashed, the wait never ends and the run hangs instead of failing.
    The sanctioned patterns are :func:`repro.runtime.queues.abortable_get` /
    ``abortable_put`` (that module is exempt — it is where the polling loop
    lives) and the coordinator-side abort-aware proxies, which the rule
    recognises by receiver names containing ``abortable``/``guarded``.
    Explicit ``timeout=``/``block=`` keywords and the ``*_nowait`` variants
    are always fine.
    """

    rule_id = "RPL002"

    def visit_Call(self, node: ast.Call) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        if self.module.relpath.endswith("runtime/queues.py"):
            return
        if not isinstance(node.func, ast.Attribute):
            return
        method = node.func.attr
        if method not in {"get", "put"}:
            return
        receiver = _terminal_name(node.func.value)
        if not _is_queueish(receiver) or _is_abort_aware(receiver):
            return
        if node.keywords:
            return
        if method == "get" and not node.args:
            self.report(
                node,
                f"bare blocking {receiver}.get() without a timeout is a "
                "hang-on-crash hazard; use repro.runtime.queues."
                "abortable_get or an abort-aware proxy",
            )
        elif method == "put" and len(node.args) == 1:
            self.report(
                node,
                f"bare blocking {receiver}.put(...) without a timeout is a "
                "hang-on-crash hazard; use repro.runtime.queues."
                "abortable_put or an abort-aware proxy",
            )


class PauseResumePairingRule(Rule):
    """RPL003: every path that pauses keys must reach a matching release.

    The migration protocol buffers tuples for paused keys; a path that
    pauses and then leaves the function without resuming (or handing the
    pause to a pending-migration continuation, or raising/aborting) strands
    those tuples forever — the silent-hang class of bug.  A CFG-lite walk
    from each ``<router>.pause(...)`` / ``_paused_keys.add/update`` site
    scans the statements that follow, walking out through enclosing blocks:

    * a ``resume`` call, an assignment to a ``*pending*`` attribute, a
      ``raise``, or an ``abort``/``trip`` call resolves the pause;
    * a ``return`` before any resolution, or falling off the end of the
      function, is a violation;
    * a ``try`` body is additionally credited with its ``finally`` block.

    Functions named ``pause``/``resume`` (the primitives themselves) are
    exempt.
    """

    rule_id = "RPL003"

    _RESOLVED = "resolved"
    _FALLTHROUGH = "fallthrough"
    _ESCAPED = "escaped"

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node.name not in {"pause", "resume"}:
            self._analyze_function(node)
        # Nested defs are analyzed on their own via generic_visit.
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    # -- trigger / resolution predicates ---------------------------------

    def _iter_own_nodes(self, stmt: ast.stmt):
        """Walk a statement without descending into nested function defs."""
        stack: List[ast.AST] = [stmt]
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
                ):
                    continue
                stack.append(child)

    def _trigger(self, stmt: ast.stmt) -> Optional[ast.Call]:
        for node in self._iter_own_nodes(stmt):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
            ):
                continue
            if node.func.attr == "pause":
                return node
            receiver = _terminal_name(node.func.value) or ""
            if node.func.attr in {"add", "update"} and "_paused" in receiver:
                return node
        return None

    def _resolves(self, stmt: ast.stmt) -> bool:
        for node in self._iter_own_nodes(stmt):
            if isinstance(node, ast.Raise):
                return True
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in {"resume", "abort", "trip"}:
                    return True
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    name = _terminal_name(target) or ""
                    if "pending" in name.lower():
                        return True
        return False

    # -- CFG-lite walk ---------------------------------------------------

    def _analyze_function(self, func: ast.FunctionDef) -> None:
        self._walk_block(func.body, chain=[])

    def _walk_block(
        self,
        block: Sequence[ast.stmt],
        chain: List[tuple],
    ) -> None:
        """Find triggers in ``block``; recurse into compound statements.

        ``chain`` is the enclosing-block path: ``(block, index, owner)``
        entries from outermost to innermost, where ``owner`` is the compound
        statement at ``block[index]`` we descended into.
        """
        for index, stmt in enumerate(block):
            sub_blocks = self._sub_blocks(stmt)
            # Compound statements defer to the recursion below, so a trigger
            # nested in (say) a for body is checked exactly once, at its own
            # block level — where the statements that follow it are visible.
            trigger = None if sub_blocks else self._trigger(stmt)
            if trigger is not None:
                state = self._scan_from(block, index + 1)
                position = 0
                walk = list(chain)
                while state == self._FALLTHROUGH and walk:
                    outer_block, outer_index, owner = walk.pop()
                    if (
                        isinstance(owner, ast.Try)
                        and owner.finalbody
                        and any(self._resolves(s) for s in owner.finalbody)
                    ):
                        state = self._RESOLVED
                        break
                    state = self._scan_from(outer_block, outer_index + 1)
                    position += 1
                if state != self._RESOLVED:
                    verb = (
                        "returns"
                        if state == self._ESCAPED
                        else "falls off the function end"
                    )
                    self.report(
                        trigger,
                        f"pause path {verb} without a matching resume, "
                        "pending-migration handoff, or abort",
                    )
            for sub_block in sub_blocks:
                self._walk_block(sub_block, chain + [(block, index, stmt)])

    def _scan_from(self, block: Sequence[ast.stmt], start: int) -> str:
        for stmt in block[start:]:
            if self._resolves(stmt):
                return self._RESOLVED
            if isinstance(stmt, ast.Return):
                return self._ESCAPED
        return self._FALLTHROUGH

    @staticmethod
    def _sub_blocks(stmt: ast.stmt) -> List[Sequence[ast.stmt]]:
        blocks: List[Sequence[ast.stmt]] = []
        for attr in ("body", "orelse", "finalbody"):
            sub = getattr(stmt, attr, None)
            if (
                sub
                and isinstance(sub, list)
                and not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            ):
                blocks.append(sub)
        for handler in getattr(stmt, "handlers", []) or []:
            blocks.append(handler.body)
        return blocks


class ForkSafetyRule(Rule):
    """RPL004: no divergent per-process state in worker-executed modules.

    Worker and source entry points run in forked/spawned child processes:
    module-level mutable state mutated there silently diverges per process
    (each child edits its own copy), and the shared module-level RNG streams
    (``random.*`` / ``np.random.*``) are duplicated by ``fork`` — every
    child draws the *same* "random" sequence.  The rule scopes itself to
    modules that define ``worker_main``/``source_main`` and to
    ``repro/operators/`` (code executed inside workers), flagging inside
    function bodies: ``global`` statements, mutation of module-level
    mutable names, and global-RNG calls (explicit generator objects from
    the allowlist — ``default_rng`` and friends — are fine).
    """

    rule_id = "RPL004"

    _MUTABLE_CALLS = {"dict", "list", "set", "defaultdict", "Counter", "deque"}
    _MUTATORS = {
        "append",
        "extend",
        "add",
        "update",
        "setdefault",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
    }

    def __init__(self, module: ModuleContext, project: Project):
        super().__init__(module, project)
        self._in_scope = "repro/operators/" in module.relpath or any(
            isinstance(node, ast.FunctionDef)
            and node.name in {"worker_main", "source_main"}
            for node in module.tree.body
        )
        self._module_mutables: Set[str] = set()
        self._depth = 0
        if self._in_scope:
            for node in module.tree.body:
                if isinstance(node, ast.Assign):
                    value = node.value
                    mutable = isinstance(
                        value,
                        (
                            ast.Dict,
                            ast.List,
                            ast.Set,
                            ast.DictComp,
                            ast.ListComp,
                            ast.SetComp,
                        ),
                    ) or (
                        isinstance(value, ast.Call)
                        and _terminal_name(value.func) in self._MUTABLE_CALLS
                    )
                    if mutable:
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self._module_mutables.add(target.id)

    def visit(self, node: ast.AST) -> None:
        if not self._in_scope:
            return
        super().visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Global(self, node: ast.Global) -> None:
        if self._depth:
            self.report(
                node,
                f"'global {', '.join(node.names)}' in a worker-executed "
                "function: module globals diverge per process",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if self._depth and isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                node.func.attr in self._MUTATORS
                and isinstance(receiver, ast.Name)
                and receiver.id in self._module_mutables
            ):
                self.report(
                    node,
                    f"mutation of module-level '{receiver.id}' in a "
                    "worker-executed function: state diverges per process",
                )
            path = _attribute_path(node.func)
            if self._is_global_rng(path):
                self.report(
                    node,
                    f"global RNG call '{'.'.join(path)}' in a worker-"
                    "executed function: fork duplicates the stream; pass "
                    "an explicit seeded generator instead",
                )
        self.generic_visit(node)

    def _store_target_name(self, target: ast.AST) -> Optional[str]:
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            return target.value.id
        if isinstance(target, ast.Name):
            return target.id
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth:
            for target in node.targets:
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self._module_mutables
                ):
                    self.report(
                        node,
                        f"item assignment into module-level "
                        f"'{target.value.id}' in a worker-executed "
                        "function: state diverges per process",
                    )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self._depth:
            name = self._store_target_name(node.target)
            if name in self._module_mutables:
                self.report(
                    node,
                    f"augmented assignment to module-level '{name}' in a "
                    "worker-executed function: state diverges per process",
                )
        self.generic_visit(node)

    @staticmethod
    def _is_global_rng(path: List[str]) -> bool:
        if len(path) == 2 and path[0] == "random":
            return path[1] not in _RNG_ALLOWLIST
        if (
            len(path) == 3
            and path[0] in {"np", "numpy"}
            and path[1] == "random"
        ):
            return path[2] not in _RNG_ALLOWLIST
        return False


class LoadRatioRule(Rule):
    """RPL005: no ratios over mean-load quantities outside core/load.py.

    ``average_load``/``safe_mean`` outputs can legitimately be zero or
    subnormal (an idle interval, a shed-everything run); dividing by them
    reintroduces the inf/NaN family of bugs PR 1's total-based guards in
    :mod:`repro.core.load` eliminated (``max/total·N`` never divides by a
    mean).  The rule flags ``x / average_load(...)``, ``x /
    safe_mean(...)``, and ``x / name`` where ``name`` was assigned from
    either call in the same function.  ``core/load.py`` itself — home of
    the guarded forms — is exempt.
    """

    rule_id = "RPL005"

    def __init__(self, module: ModuleContext, project: Project):
        super().__init__(module, project)
        self._function_stack: List[ast.AST] = []

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._function_stack.append(node)
        self.generic_visit(node)
        self._function_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if not isinstance(node.op, ast.Div) or self.module.relpath.endswith(
            "core/load.py"
        ):
            self.generic_visit(node)
            return
        denominator = node.right
        producer = self._mean_producer(denominator)
        if producer is not None:
            self.report(
                node,
                f"division by '{producer}' output can hit zero/subnormal "
                "means; use the total-based forms from core/load.py "
                "(max/total*N) instead",
            )
        self.generic_visit(node)

    def _mean_producer(self, node: ast.expr) -> Optional[str]:
        if isinstance(node, ast.Call):
            name = _terminal_name(node.func)
            if name in _GUARDED_MEANS:
                return name
            return None
        if isinstance(node, ast.Name) and self._function_stack:
            scope = self._function_stack[-1]
            for stmt in ast.walk(scope):
                if not isinstance(stmt, ast.Assign):
                    continue
                if not any(
                    isinstance(target, ast.Name) and target.id == node.id
                    for target in stmt.targets
                ):
                    continue
                if isinstance(stmt.value, ast.Call):
                    name = _terminal_name(stmt.value.func)
                    if name in _GUARDED_MEANS:
                        return name
        return None


class AtomicCheckpointWriteRule(Rule):
    """RPL006: checkpoint artifacts must be written atomically.

    A checkpoint or manifest file half-written at crash time is worse than
    no checkpoint at all: recovery would restore torn state.  The only
    sanctioned write path is :mod:`repro.runtime.resilience.checkpoint`'s
    ``atomic_write_bytes``/``atomic_write_json`` (tmp file + flush + fsync +
    ``os.replace``), and that module is exempt — it is where the pattern
    lives.  Everywhere else the rule flags

    * ``open(path, "w"/"wb"/"a"/...)`` — any writable mode — and
    * ``path.write_text(...)`` / ``path.write_bytes(...)``

    when the path expression mentions a checkpoint artifact: a receiver or
    argument whose name, string literal, or f-string fragment contains
    ``checkpoint``/``ckpt``/``manifest``.  Paths the rule cannot trace pass
    (heuristic, like the rest of the family).
    """

    rule_id = "RPL006"

    _WRITE_METHODS = {"write_text", "write_bytes"}

    def __init__(self, module: ModuleContext, project: Project):
        super().__init__(module, project)
        self._exempt = module.relpath.endswith("runtime/resilience/checkpoint.py")

    def visit(self, node: ast.AST) -> None:
        if self._exempt:
            return
        super().visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._check(node)
        self.generic_visit(node)

    def _check(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Attribute):
            if node.func.attr in self._WRITE_METHODS and _mentions_checkpoint(
                node.func.value
            ):
                self.report(
                    node,
                    f"bare .{node.func.attr}() on a checkpoint path is torn "
                    "on crash; use atomic_write_bytes/atomic_write_json "
                    "(tmp + os.replace) from runtime/resilience/checkpoint",
                )
                return
        if _terminal_name(node.func) != "open" or not node.args:
            return
        if not self._writable_mode(node):
            return
        path_expr: ast.AST = node.args[0]
        if isinstance(node.func, ast.Attribute) and _mentions_checkpoint(
            node.func.value
        ):
            # pathlib style: <checkpoint_path>.open("w").
            path_expr = node.func.value
        if _mentions_checkpoint(path_expr):
            self.report(
                node,
                "bare open(..., 'w') on a checkpoint path is torn on "
                "crash; use atomic_write_bytes/atomic_write_json "
                "(tmp + os.replace) from runtime/resilience/checkpoint",
            )

    @staticmethod
    def _writable_mode(node: ast.Call) -> bool:
        mode: Optional[ast.expr] = None
        if isinstance(node.func, ast.Attribute):
            # path.open(mode) — the mode is the first positional argument.
            if node.args:
                mode = node.args[0]
        elif len(node.args) >= 2:
            mode = node.args[1]
        for keyword in node.keywords:
            if keyword.arg == "mode":
                mode = keyword.value
        if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
            return False
        return any(flag in mode.value for flag in "wax+")


#: Path-expression fragments that mark a file as a checkpoint artifact.
_CHECKPOINT_HINTS = ("checkpoint", "ckpt", "manifest")


def _mentions_checkpoint(node: ast.AST) -> bool:
    """True when a path expression names a checkpoint artifact.

    Recurses through calls (``os.path.join(root, "manifest.json")``),
    f-strings, concatenation, and attribute/name receivers.
    """

    def _hit(text: str) -> bool:
        low = text.lower()
        return any(hint in low for hint in _CHECKPOINT_HINTS)

    name = _terminal_name(node)
    if name and _hit(name):
        return True
    if isinstance(node, ast.Constant):
        return isinstance(node.value, str) and _hit(node.value)
    if isinstance(node, ast.JoinedStr):
        return any(_mentions_checkpoint(value) for value in node.values)
    if isinstance(node, ast.FormattedValue):
        return _mentions_checkpoint(node.value)
    if isinstance(node, ast.BinOp):
        return _mentions_checkpoint(node.left) or _mentions_checkpoint(node.right)
    if isinstance(node, ast.Call):
        return any(_mentions_checkpoint(arg) for arg in node.args)
    if isinstance(node, ast.Attribute):
        return _mentions_checkpoint(node.value)
    return False


#: Registry, ordered by rule ID.
ALL_RULES = (
    MessageDisciplineRule,
    BlockingCallRule,
    PauseResumePairingRule,
    ForkSafetyRule,
    LoadRatioRule,
    AtomicCheckpointWriteRule,
)


def get_rules(ids: Optional[Sequence[str]] = None) -> List[type]:
    """Resolve rule IDs to rule classes (all rules when ``ids`` is None)."""
    if ids is None:
        return list(ALL_RULES)
    by_id: Dict[str, type] = {rule.rule_id: rule for rule in ALL_RULES}
    rules: List[type] = []
    for rule_id in ids:
        if rule_id not in by_id:
            known = ", ".join(sorted(by_id))
            raise ValueError(f"unknown rule id {rule_id!r} (known: {known})")
        rules.append(by_id[rule_id])
    return rules
