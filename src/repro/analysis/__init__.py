"""Repo-specific correctness tooling for the multiprocess dataflow runtime.

Two halves, one invariant set:

* **Static checker** (:mod:`repro.analysis.engine`, :mod:`~repro.analysis.
  rules`): an AST lint pass (``python -m repro lint``) with rules targeting
  the protocol hazards this codebase actually has — unregistered objects
  crossing process boundaries (RPL001), bare blocking queue calls (RPL002),
  unpaired pause/resume paths (RPL003), fork-unsafe module state (RPL004),
  and ratio patterns bypassing the load-model division guards (RPL005).
* **Runtime sanitizer** (:mod:`repro.analysis.sanitizer`): an opt-in
  (``REPRO_SANITIZE=1`` / ``repro bench --sanitize``) wrapper around a live
  topology's queues, router and controller that dynamically asserts the same
  protocol invariants — monotone interval watermarks, tuple conservation,
  pause/resume pairing, no put-after-close — recording violations into a
  structured report instead of crashing mid-bench.
"""

from repro.analysis.engine import LintEngine, lint_paths
from repro.analysis.findings import Finding
from repro.analysis.rules import ALL_RULES, get_rules
from repro.analysis.sanitizer import SanitizerReport, StageSanitizer, Violation

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintEngine",
    "SanitizerReport",
    "StageSanitizer",
    "Violation",
    "get_rules",
    "lint_paths",
]
