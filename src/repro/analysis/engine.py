"""The lint engine: collect modules, run rules, filter suppressions.

The engine parses every ``.py`` file under the given paths once, builds a
:class:`Project` (so rules needing cross-module facts — e.g. RPL001's message
registry from ``runtime/messages.py`` — don't re-read the tree), runs each
registered rule's visitor over each module, and drops findings whose line
carries a matching inline suppression.  Baseline handling lives with the CLI:
the engine always reports the full unsuppressed set.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analysis.findings import ALL_RULES_SENTINEL, Finding, parse_suppressions

__all__ = ["LintEngine", "ModuleContext", "Project", "lint_paths"]


@dataclass
class ModuleContext:
    """One parsed source file plus per-line suppression data."""

    path: Path
    relpath: str
    source: str
    tree: ast.Module
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)

    def is_suppressed(self, rule: str, line: int) -> bool:
        rules = self.suppressions.get(line)
        if rules is None:
            return False
        return rules == ALL_RULES_SENTINEL or rule in rules


class Project:
    """All modules of one lint run plus lazily-derived cross-module facts."""

    def __init__(self, modules: Sequence[ModuleContext], root: Path):
        self.modules = list(modules)
        self.root = root
        self._message_types: Optional[Set[str]] = None

    def message_types(self) -> Set[str]:
        """Registered cross-process message type names.

        Parsed from the ``__all__`` of the scanned ``runtime/messages.py``
        (falling back to importing :mod:`repro.runtime.messages` when the
        lint targets don't include it, e.g. when linting only ``tests/``).
        """
        if self._message_types is not None:
            return self._message_types
        names: Set[str] = set()
        for module in self.modules:
            if module.relpath.replace("\\", "/").endswith("runtime/messages.py"):
                names = _parse_all(module.tree)
                break
        if not names:
            try:
                from repro.runtime import messages

                names = set(messages.__all__)
            except Exception:
                names = set()
        self._message_types = names
        return names


def _parse_all(tree: ast.Module) -> Set[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            targets = [
                t.id for t in node.targets if isinstance(t, ast.Name)
            ]
            if "__all__" in targets and isinstance(
                node.value, (ast.List, ast.Tuple)
            ):
                return {
                    element.value
                    for element in node.value.elts
                    if isinstance(element, ast.Constant)
                    and isinstance(element.value, str)
                }
    return set()


def collect_modules(paths: Sequence[Path], root: Path) -> List[ModuleContext]:
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules: List[ModuleContext] = []
    for file in files:
        source = file.read_text()
        try:
            tree = ast.parse(source, filename=str(file))
        except SyntaxError as exc:
            raise SyntaxError(f"cannot lint {file}: {exc}") from exc
        try:
            relpath = str(file.resolve().relative_to(root.resolve()))
        except ValueError:
            relpath = str(file)
        modules.append(
            ModuleContext(
                path=file,
                relpath=relpath.replace("\\", "/"),
                source=source,
                tree=tree,
                suppressions=parse_suppressions(source),
            )
        )
    return modules


class LintEngine:
    """Run a set of rules over a set of modules."""

    def __init__(self, rules: Sequence[type], root: Optional[Path] = None):
        self.rules = list(rules)
        self.root = root or Path.cwd()

    def run(self, paths: Iterable[Path]) -> List[Finding]:
        modules = collect_modules([Path(p) for p in paths], self.root)
        project = Project(modules, self.root)
        findings: List[Finding] = []
        for module in modules:
            for rule_cls in self.rules:
                rule = rule_cls(module, project)
                rule.visit(module.tree)
                for finding in rule.findings:
                    if not module.is_suppressed(finding.rule, finding.line):
                        findings.append(finding)
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings


def lint_paths(
    paths: Sequence[Path],
    rules: Optional[Sequence[type]] = None,
    root: Optional[Path] = None,
) -> List[Finding]:
    """Convenience one-shot: lint ``paths`` with ``rules`` (default: all)."""
    from repro.analysis.rules import ALL_RULES

    engine = LintEngine(list(rules) if rules is not None else list(ALL_RULES), root)
    return engine.run(paths)
