"""repro — reproduction of *Parallel Stream Processing Against Workload Skewness
and Variance* (Fang et al., HPDC 2017).

The package provides:

* :mod:`repro.core` — the paper's contribution: the mixed (hash + routing-table)
  key assignment function and the LLFD / MinTable / MinMig / Mixed rebalancing
  algorithms, together with the compact statistics representation and the HLHE
  value discretisation.
* :mod:`repro.baselines` — the comparison partitioners used in the evaluation:
  plain hashing (Storm default), shuffle ("Ideal"), Readj, PKG and DKG.
* :mod:`repro.engine` — a Storm-like distributed stream processing engine
  substrate (topologies, tasks, keyed state, windows, an interval-driven
  simulator with a fluid queueing model, and the pause/migrate/ack/resume
  migration protocol).
* :mod:`repro.operators` — stateful operators used by the paper's workloads:
  word count, windowed aggregation (with PKG partial/merge variant), windowed
  self-join and a continuous TPC-H Q5 pipeline.
* :mod:`repro.workloads` — synthetic workload generators: Zipf streams with
  controlled skew and fluctuation, Social-feed and Stock-exchange surrogates and
  a DBGen-like TPC-H generator.
* :mod:`repro.experiments` — the benchmark harness regenerating every figure of
  the paper's evaluation (Figs. 7–21).
* :mod:`repro.runtime` — the process-parallel execution engine: worker
  processes hosting operator task instances behind bounded queues, online
  rebalancing with live key migration, and wall-clock benchmarking
  (``python -m repro bench``).
"""

from repro.core.assignment import AssignmentFunction
from repro.core.controller import RebalanceController
from repro.core.hashing import ConsistentHashRing, UniversalHash
from repro.core.planner import RebalanceResult, get_algorithm, list_algorithms
from repro.core.routing_table import RoutingTable
from repro.core.statistics import IntervalStats, StatisticsStore
from repro.core.strategy import (
    StrategySpec,
    get_strategy,
    list_strategies,
    register_strategy,
    strategy_names,
)

__all__ = [
    "AssignmentFunction",
    "ConsistentHashRing",
    "IntervalStats",
    "RebalanceController",
    "RebalanceResult",
    "RoutingTable",
    "StatisticsStore",
    "StrategySpec",
    "UniversalHash",
    "get_algorithm",
    "get_strategy",
    "list_algorithms",
    "list_strategies",
    "register_strategy",
    "strategy_names",
]

__version__ = "1.0.0"
