"""``python -m repro`` — reproduce, persist and inspect experiment runs.

Commands::

    python -m repro run fig07 --scale tiny            # run one figure, save it
    python -m repro run myspec.json --seed 3          # run a JSON spec file
    python -m repro run all --scale tiny              # every registered figure
    python -m repro bench wordcount --parallelism 4   # wall-clock process bench
    python -m repro bench tpch_q5_chain --parallelism 2  # 3-stage Q5 topology
    python -m repro bench tpch_q5_chain --rate-sweep 5000:40000:5  # Fig. 13 knee
    python -m repro bench tpch_q5_chain --sanitize    # + runtime protocol sanitizer
    python -m repro lint                              # protocol static checker (src/)
    python -m repro lint --strict src tests           # CI gate, no baseline
    python -m repro list                              # experiments + strategies
    python -m repro list --runs                       # stored runs
    python -m repro report                            # render the latest run
    python -m repro report fig07-20260727-...-s0      # render one stored run

``run`` writes one directory per run under ``--results-dir`` (default
``./results``) containing ``run.json`` (spec + metadata + rows, re-runnable
with ``repro run <dir>/run.json``) and ``report.txt`` (the rendered table).
``bench`` executes a workload on the process-parallel runtime (real worker
processes, measured tuples/sec and latency percentiles) and additionally
writes the standalone ``BENCH_runtime.json`` report.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

__all__ = ["main", "build_parser"]


def _parse_value(text: str) -> Any:
    """Best-effort literal parsing: JSON first, bare comma-lists, else string."""
    try:
        return json.loads(text)
    except ValueError:
        pass
    if "," in text:
        return [_parse_value(part) for part in text.split(",") if part]
    return text


def _parse_assignments(pairs: Sequence[str], flag: str) -> Dict[str, Any]:
    values: Dict[str, Any] = {}
    for pair in pairs:
        key, separator, value = pair.partition("=")
        if not separator or not key:
            raise SystemExit(f"{flag} expects KEY=VALUE, got {pair!r}")
        values[key] = _parse_value(value)
    return values


def _positive_int(text: str) -> int:
    """argparse type: a strictly positive integer (e.g. ``--parallelism``)."""
    try:
        value = int(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected an integer, got {text!r}"
        ) from exc
    if value <= 0:
        raise argparse.ArgumentTypeError(f"expected a positive integer, got {value}")
    return value


def _service_time(text: str) -> Any:
    """argparse type: microseconds, or ``auto`` for adaptive calibration."""
    if text.strip().lower() == "auto":
        return "auto"
    try:
        value = float(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected microseconds or 'auto', got {text!r}"
        ) from exc
    if value < 0:
        raise argparse.ArgumentTypeError(
            f"service time must be non-negative, got {value}"
        )
    return value


def _parse_rate_sweep(text: str) -> List[float]:
    """``--rate-sweep LO:HI:STEPS`` into an ascending list of offered rates.

    ``STEPS`` linearly spaced rates from ``LO`` to ``HI`` inclusive, e.g.
    ``10000:50000:5`` -> 10k, 20k, 30k, 40k, 50k tuples/second.
    """
    parts = text.split(":")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"expected LO:HI:STEPS (e.g. 10000:50000:5), got {text!r}"
        )
    try:
        low, high = float(parts[0]), float(parts[1])
        steps = int(parts[2])
    except ValueError as exc:
        raise argparse.ArgumentTypeError(
            f"expected numeric LO:HI and integer STEPS, got {text!r}"
        ) from exc
    if low <= 0 or high <= low:
        raise argparse.ArgumentTypeError(
            f"need 0 < LO < HI, got LO={parts[0]} HI={parts[1]}"
        )
    if steps < 2:
        raise argparse.ArgumentTypeError(
            f"a sweep needs at least 2 steps, got {steps}"
        )
    pace = (high - low) / (steps - 1)
    return [low + index * pace for index in range(steps)]


def _parse_stage_parallelism(pairs: Sequence[str]) -> Dict[str, int]:
    """``--stage-parallelism NAME=COUNT`` pairs into a validated mapping."""
    stages: Dict[str, int] = {}
    for pair in pairs:
        stage, separator, count = pair.partition("=")
        if not separator or not stage:
            raise SystemExit(
                f"--stage-parallelism expects STAGE=COUNT, got {pair!r}"
            )
        try:
            workers = int(count)
        except ValueError as exc:
            raise SystemExit(
                f"--stage-parallelism {stage}: expected an integer worker "
                f"count, got {count!r}"
            ) from exc
        if workers <= 0:
            raise SystemExit(
                f"--stage-parallelism {stage}: worker count must be positive, "
                f"got {workers}"
            )
        stages[stage] = workers
    return stages


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run and inspect the paper-reproduction experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    runp = sub.add_parser(
        "run", help="run one experiment (or 'all'), or a JSON spec file"
    )
    runp.add_argument(
        "experiment",
        help="experiment name (e.g. fig07), 'all', or a path to a spec .json",
    )
    runp.add_argument("--scale", default=None, help="scale preset (tiny|small|paper)")
    runp.add_argument("--seed", type=int, default=None, help="master RNG seed")
    runp.add_argument(
        "--strategies",
        default=None,
        help="comma-separated strategy list handed to the driver",
    )
    runp.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override one ExperimentScale field (repeatable), e.g. --set num_keys=5000",
    )
    runp.add_argument(
        "--param",
        dest="params",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="driver parameter (repeatable), e.g. --param thetas=[0.02,0.3]",
    )
    runp.add_argument(
        "--results-dir", default="results", help="ResultsStore root (default ./results)"
    )
    runp.add_argument(
        "--no-save", action="store_true", help="print the report without persisting"
    )
    runp.add_argument(
        "--quiet", action="store_true", help="only print run ids, not full tables"
    )

    benchp = sub.add_parser(
        "bench",
        help="wall-clock benchmark on the process-parallel runtime",
    )
    benchp.add_argument(
        "workload",
        help=(
            "bench workload (wordcount | windowed_aggregate | tpch_q5 | "
            "tpch_q5_chain | tpch_q5_trace | diamond; tpch_q5_chain/_trace "
            "run the multi-stage Q5 process topology, diamond the split-key "
            "fan-out/fan-in DAG)"
        ),
    )
    benchp.add_argument(
        "--parallelism",
        type=_positive_int,
        default=4,
        help="worker processes per stage (default 4)",
    )
    benchp.add_argument(
        "--stage-parallelism",
        dest="stage_parallelism",
        action="append",
        default=[],
        metavar="STAGE=COUNT",
        help=(
            "per-stage worker count override (repeatable; topology workloads "
            "only), e.g. --stage-parallelism order-join=4"
        ),
    )
    benchp.add_argument(
        "--scale", default="tiny", help="scale preset (tiny|small|paper, default tiny)"
    )
    benchp.add_argument("--seed", type=int, default=0, help="master RNG seed")
    benchp.add_argument(
        "--strategies",
        default=None,
        help=(
            "comma-separated strategy list (default: storm,mixed; "
            "diamond defaults to pkg,storm,mixed)"
        ),
    )
    benchp.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override one ExperimentScale field (repeatable), e.g. --set skew=1.2",
    )
    benchp.add_argument(
        "--service-time-us",
        type=_service_time,
        default=50.0,
        help=(
            "emulated per-cost-unit service time of each worker (default 50), "
            "or 'auto' to calibrate it from the first measured interval"
        ),
    )
    benchp.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="TUPLES_PER_S",
        help=(
            "open-loop source rate in tuples/second "
            "(default: closed-loop drain at saturation)"
        ),
    )
    benchp.add_argument(
        "--rate-sweep",
        type=_parse_rate_sweep,
        default=None,
        metavar="LO:HI:STEPS",
        help=(
            "sweep the open-loop offered rate toward saturation (STEPS "
            "linearly spaced rates, one measured row each — the Fig. 13 "
            "latency/throughput knee); mutually exclusive with --rate"
        ),
    )
    benchp.add_argument(
        "--batch-size", type=int, default=256, help="tuples per micro-batch"
    )
    benchp.add_argument(
        "--queue-capacity",
        type=int,
        default=8,
        help="bounded worker-queue depth, in batches",
    )
    benchp.add_argument(
        "--shed-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="shed a batch blocked longer than this (default: pure backpressure)",
    )
    benchp.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "enable the runtime protocol sanitizer (invariant checks on "
            "every send, interval close and pause/resume; violations are "
            "recorded in the report, and a non-empty report fails the run)"
        ),
    )
    benchp.add_argument(
        "--kill-worker",
        default=None,
        metavar="STAGE:TASK@INTERVAL",
        help=(
            "fault injection: SIGKILL one worker mid-run (e.g. "
            "revenue-agg:0@3); requires checkpointing, so a run-scoped "
            "checkpoint dir is created when --checkpoint-dir is not given. "
            "The REPRO_KILL env var supplies the same spec when the flag "
            "is absent"
        ),
    )
    benchp.add_argument(
        "--scale-at",
        default=None,
        metavar="INTERVAL:STAGE:±N",
        help=(
            "elasticity: grow or shrink one stage's process group at an "
            "interval boundary via live key migration (e.g. "
            "--scale-at 2:order-join:+1)"
        ),
    )
    benchp.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help=(
            "enable periodic per-task KeyedState checkpoints, written "
            "atomically under DIR (one subdir per strategy run)"
        ),
    )
    benchp.add_argument(
        "--checkpoint-every",
        type=_positive_int,
        default=1,
        metavar="N",
        help="checkpoint at every N-th interval boundary (default 1)",
    )
    benchp.add_argument(
        "--output",
        default="BENCH_runtime.json",
        help="standalone JSON report path (default ./BENCH_runtime.json)",
    )
    benchp.add_argument(
        "--results-dir", default="results", help="ResultsStore root (default ./results)"
    )
    benchp.add_argument(
        "--no-save", action="store_true", help="skip the ResultsStore persistence"
    )
    benchp.add_argument(
        "--quiet", action="store_true", help="only print the summary line per strategy"
    )

    listp = sub.add_parser("list", help="list experiments, strategies and stored runs")
    listp.add_argument("--runs", action="store_true", help="only list stored runs")
    listp.add_argument(
        "--results-dir", default="results", help="ResultsStore root (default ./results)"
    )

    reportp = sub.add_parser("report", help="render a stored run (latest by default)")
    reportp.add_argument(
        "run_id", nargs="?", default=None, help="stored run id (default: latest)"
    )
    reportp.add_argument(
        "--results-dir", default="results", help="ResultsStore root (default ./results)"
    )

    lintp = sub.add_parser(
        "lint",
        help="protocol static checker (rules RPL001-RPL006, repro.analysis)",
    )
    lintp.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lintp.add_argument(
        "--rules",
        default=None,
        metavar="IDS",
        help="comma-separated rule IDs to run (default: all six)",
    )
    lintp.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule IDs with their one-line descriptions and exit",
    )
    lintp.add_argument(
        "--strict",
        action="store_true",
        help="ignore the baseline: every unsuppressed finding fails (CI gate)",
    )
    lintp.add_argument(
        "--baseline",
        default=".repro-lint-baseline.json",
        metavar="PATH",
        help=(
            "known-findings baseline file (default ./.repro-lint-baseline."
            "json; silently skipped when absent)"
        ),
    )
    lintp.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings as the new baseline and exit",
    )
    lintp.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default text)",
    )
    return parser


def _specs_for(args: argparse.Namespace) -> List[Any]:
    """Build the spec list the ``run`` command executes."""
    from repro.experiments.specs import ExperimentSpec, experiment_names

    overrides = _parse_assignments(args.overrides, "--set")
    params = _parse_assignments(args.params, "--param")
    strategies: Optional[List[str]] = None
    if args.strategies is not None:
        strategies = [name for name in args.strategies.split(",") if name]

    target = args.experiment
    path = Path(target)
    if target.endswith(".json") or path.is_file():
        if not path.is_file():
            raise SystemExit(f"spec file not found: {target}")
        try:
            payload = json.loads(path.read_text())
            if "spec" in payload and "experiment" not in payload:
                payload = payload["spec"]  # a stored run.json wraps its spec
            base = ExperimentSpec.from_dict(payload)
        except (ValueError, KeyError) as exc:
            raise SystemExit(f"invalid spec file {target}: {exc}") from exc
        names = [None]
    elif target == "all":
        base = ExperimentSpec("all")
        names = experiment_names()
    else:
        if target not in experiment_names():
            raise SystemExit(
                f"unknown experiment {target!r}; known: {', '.join(experiment_names())} "
                "(or 'all', or a spec .json path)"
            )
        base = ExperimentSpec(target)
        names = [target]

    specs = []
    for name in names:
        specs.append(
            ExperimentSpec(
                experiment=name if name is not None else base.experiment,
                scale=args.scale if args.scale is not None else base.scale,
                overrides={**dict(base.overrides), **overrides},
                seed=args.seed if args.seed is not None else base.seed,
                strategies=strategies if strategies is not None else base.strategies,
                sweep=base.sweep,
                params={**dict(base.params), **params},
            )
        )
    return specs


def _runtime_spec_payload(target: str) -> Optional[Dict[str, Any]]:
    """The embedded RuntimeSpec when ``target`` is a stored bench run/spec."""
    path = Path(target)
    if not (target.endswith(".json") and path.is_file()):
        return None
    try:
        payload = json.loads(path.read_text())
    except ValueError:
        return None
    spec = payload.get("spec", payload)
    params = spec.get("params", {}) if isinstance(spec, dict) else {}
    runtime_spec = params.get("runtime_spec")
    return runtime_spec if isinstance(runtime_spec, dict) else None


def _rerun_bench(args: argparse.Namespace, payload: Dict[str, Any]) -> int:
    """Re-execute a stored process-runtime bench (`repro run <run>/run.json`)."""
    import dataclasses

    from repro.experiments.store import ResultsStore
    from repro.runtime.bench import RuntimeSpec, run_bench

    spec = RuntimeSpec.from_dict(payload)
    replacements: Dict[str, Any] = {}
    if args.seed is not None:
        replacements["seed"] = args.seed
    if args.scale is not None:
        replacements["scale"] = args.scale
    if args.strategies is not None:
        replacements["strategies"] = [
            name for name in args.strategies.split(",") if name
        ]
    if replacements:
        spec = dataclasses.replace(spec, **replacements)
    store = None if args.no_save else ResultsStore(args.results_dir)
    run, _ = run_bench(spec, store=store, output_path=None)
    if not args.quiet:
        print(run.result.to_text())
    meta = run.metadata
    location = f" -> {Path(args.results_dir) / meta.run_id}" if store is not None else ""
    print(
        f"[bench {spec.workload} engine={meta.engine} cpus={meta.host_cpu_count} "
        f"{meta.wall_time_seconds:.1f}s{location}]"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.experiments.specs import run_batch
    from repro.experiments.store import ResultsStore

    runtime_payload = _runtime_spec_payload(args.experiment)
    if runtime_payload is not None:
        return _rerun_bench(args, runtime_payload)

    store = None if args.no_save else ResultsStore(args.results_dir)
    specs = _specs_for(args)

    def report(outcome) -> None:
        meta = outcome.metadata
        if not args.quiet:
            print(outcome.result.to_text())
        location = (
            f" -> {Path(args.results_dir) / meta.run_id}" if store is not None else ""
        )
        print(
            f"[{meta.experiment} scale={meta.scale} seed={meta.seed} "
            f"{meta.wall_time_seconds:.1f}s run={meta.run_id}{location}]"
        )

    run_batch(specs, store=store, on_result=report)
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.experiments.store import ResultsStore
    from repro.runtime.bench import (
        BENCH_TOPOLOGY_WORKLOADS,
        DEFAULT_STRATEGIES,
        RuntimeSpec,
        merged_sanitizer_report,
        run_bench,
    )

    if args.strategies is not None:
        strategies = [name for name in args.strategies.split(",") if name]
    else:
        # Workloads may pin their own comparison set (the diamond adds pkg,
        # whose key splitting is the topology's whole point).
        workload = BENCH_TOPOLOGY_WORKLOADS.get(args.workload)
        default = (
            workload.default_strategies
            if workload is not None and workload.default_strategies is not None
            else DEFAULT_STRATEGIES
        )
        strategies = list(default)
    calibrate = args.service_time_us == "auto"
    try:
        spec = RuntimeSpec(
            workload=args.workload,
            strategies=strategies,
            parallelism=args.parallelism,
            scale=args.scale,
            overrides=_parse_assignments(args.overrides, "--set"),
            seed=args.seed,
            service_time_us=50.0 if calibrate else args.service_time_us,
            calibrate_pacing=calibrate,
            offered_rate=args.rate,
            rate_sweep=args.rate_sweep,
            stage_parallelism=_parse_stage_parallelism(args.stage_parallelism),
            batch_size=args.batch_size,
            queue_capacity=args.queue_capacity,
            shed_timeout_seconds=args.shed_timeout,
            sanitize=args.sanitize,
            kill_worker=args.kill_worker or os.environ.get("REPRO_KILL") or None,
            scale_at=args.scale_at,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    store = None if args.no_save else ResultsStore(args.results_dir)

    def progress(name: str, outcome) -> None:
        summary = outcome.summary()
        print(
            f"[{name}: {summary['tuples']:.0f} tuples in "
            f"{summary['wall_seconds']:.2f}s -> "
            f"{summary['tuples_per_second']:,.0f} tuples/s, "
            f"p50={summary['latency_p50_ms']:.1f}ms "
            f"p99={summary['latency_p99_ms']:.1f}ms, "
            f"rebalances={summary['rebalances']:.0f} "
            f"pause={summary['pause_seconds']:.3f}s]"
        )

    run, outcomes = run_bench(
        spec, store=store, output_path=args.output, on_result=progress
    )
    if not args.quiet:
        print(run.result.to_text())
    meta = run.metadata
    location = f" -> {Path(args.results_dir) / meta.run_id}" if store is not None else ""
    print(
        f"[bench {spec.workload} engine={meta.engine} cpus={meta.host_cpu_count} "
        f"{meta.wall_time_seconds:.1f}s report={args.output}{location}]"
    )
    sanitizer = merged_sanitizer_report(outcomes)
    if sanitizer is not None:
        checks = ", ".join(
            f"{check}={count}"
            for check, count in sorted(sanitizer["checks"].items())
        )
        status = (
            "clean"
            if sanitizer["ok"]
            else f"{len(sanitizer['violations'])} violation(s)"
        )
        print(f"[sanitizer: {status}; checks: {checks}]")
        for violation in sanitizer["violations"]:
            print(
                f"  ! {violation['check']} @ {violation['stage']}: "
                f"{violation['message']}"
            )
        if not sanitizer["ok"]:
            return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.engine import LintEngine
    from repro.analysis.findings import Baseline
    from repro.analysis.rules import ALL_RULES, get_rules

    if args.list_rules:
        for rule in ALL_RULES:
            first_line = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.rule_id}  {first_line}")
        return 0

    rule_ids = (
        [rule_id for rule_id in args.rules.split(",") if rule_id]
        if args.rules is not None
        else None
    )
    try:
        rules = get_rules(rule_ids)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    paths = [Path(path) for path in args.paths]
    for path in paths:
        if not path.exists():
            raise SystemExit(f"lint path not found: {path}")
    findings = LintEngine(rules, root=Path.cwd()).run(paths)

    baseline_path = Path(args.baseline)
    if args.write_baseline:
        Baseline.from_findings(findings).save(baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0

    if not args.strict and baseline_path.is_file():
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        fresh = baseline.filter_new(findings)
    else:
        fresh = list(findings)

    if args.format == "json":
        print(
            json.dumps(
                {"findings": [finding.to_dict() for finding in fresh]},
                indent=1,
            )
        )
    else:
        for finding in fresh:
            print(finding.render())
        grandfathered = len(findings) - len(fresh)
        note = f" ({grandfathered} baselined)" if grandfathered else ""
        mode = "lint --strict" if args.strict else "lint"
        print(
            f"[{mode}: {len(fresh)} finding(s){note}; rules: "
            f"{', '.join(rule.rule_id for rule in rules)}; paths: "
            f"{', '.join(str(path) for path in paths)}]"
        )
    return 1 if fresh else 0


def _cmd_list(args: argparse.Namespace) -> int:
    from repro.experiments.store import ResultsStore

    if not args.runs:
        from repro.core.strategy import list_strategies
        from repro.experiments.specs import list_experiments

        print("experiments:")
        for definition in list_experiments():
            print(f"  {definition.name:<8} {definition.description}")
        print()
        print("strategies:")
        for spec in list_strategies():
            tunables = ", ".join(spec.tunables) if spec.tunables else "-"
            print(f"  {spec.name:<10} {spec.description}  [tunables: {tunables}]")
        print()

    store = ResultsStore(args.results_dir)
    runs = store.list_runs()
    if not runs:
        print(f"no stored runs under {store.root}/")
        return 0
    print(f"runs ({store.root}/):")
    for meta in runs:
        print(
            f"  {meta.run_id:<40} {meta.figure:<8} scale={meta.scale:<6} "
            f"seed={meta.seed} engine={meta.engine:<7} "
            f"{meta.wall_time_seconds:6.1f}s {meta.created_at}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.store import ResultsStore

    store = ResultsStore(args.results_dir)
    run_id = args.run_id
    if run_id is None:
        run_id = store.latest_run_id()
        if run_id is None:
            raise SystemExit(f"no stored runs under {store.root}/")
    try:
        outcome = store.load(run_id)
    except KeyError as exc:
        raise SystemExit(str(exc)) from exc
    meta = outcome.metadata
    print(
        f"run {meta.run_id} (experiment={meta.experiment}, scale={meta.scale}, "
        f"seed={meta.seed}, git={meta.git_rev or 'n/a'}, "
        f"wall={meta.wall_time_seconds:.1f}s, at={meta.created_at})"
    )
    print(outcome.result.to_text())
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise SystemExit(f"unknown command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
