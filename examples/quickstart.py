#!/usr/bin/env python3
"""Quickstart: balance a skewed key-partitioned operator with the Mixed algorithm.

The script builds a Zipf-skewed workload, shows how imbalanced plain hashing
leaves the downstream tasks, then lets the paper's rebalance controller (Mixed
algorithm, bounded routing table) construct a new assignment function and
reports the balance it achieves, the migration it required and the size of the
routing table it needed.

Run with:  python examples/quickstart.py
"""

from repro.core import AssignmentFunction, RebalanceController
from repro.core.controller import ControllerConfig
from repro.core.load import load_from_costs, max_balance_indicator, max_skewness
from repro.core.statistics import IntervalStats
from repro.workloads import ZipfWorkload


def main() -> None:
    num_tasks = 10
    workload = ZipfWorkload(
        num_keys=20_000,
        skew=0.85,
        tuples_per_interval=200_000,
        fluctuation=0.8,
        num_tasks=num_tasks,
        intervals=5,
        seed=7,
    )

    assignment = AssignmentFunction.hashed(num_tasks, seed=7)
    controller = RebalanceController(
        assignment,
        ControllerConfig(theta_max=0.05, max_table_size=2_000, algorithm="mixed", window=1),
    )

    print(f"{'interval':>8} | {'skew before':>11} | {'skew after':>10} | "
          f"{'migrated %':>10} | {'table':>6} | {'plan ms':>8}")
    print("-" * 66)
    for index, snapshot in enumerate(workload.take(5)):
        stats = IntervalStats.from_frequencies(index, snapshot)
        loads_before = load_from_costs(
            {k: s.cost for k, s in stats.items()}, controller.assignment, num_tasks
        )
        controller.observe(stats)
        result = controller.maybe_rebalance()
        loads_after = load_from_costs(
            {k: s.cost for k, s in stats.items()}, controller.assignment, num_tasks
        )
        print(
            f"{index:>8} | {max_skewness(loads_before):>11.3f} | "
            f"{max_skewness(loads_after):>10.3f} | "
            f"{(result.migration_fraction * 100 if result else 0):>10.2f} | "
            f"{controller.assignment.routing_table.size:>6} | "
            f"{(result.generation_time * 1e3 if result else 0):>8.1f}"
        )

    print()
    print(f"max residual imbalance θ = {max_balance_indicator(loads_after):.4f} "
          f"(target θ_max = {controller.config.theta_max})")
    print(f"routing table holds {controller.assignment.routing_table.size} of "
          f"{20_000} keys — every other key is still routed by the hash function.")


if __name__ == "__main__":
    main()
