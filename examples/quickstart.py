#!/usr/bin/env python3
"""Quickstart: the three layers of the public experiment API.

1. **Strategy registry** — build the paper's Mixed rebalancer by name and
   watch it balance a skewed Zipf workload interval by interval.
2. **ExperimentSpec runner** — run one figure of the evaluation declaratively.
3. **ResultsStore** — persist the run and read it back.

Run with:  python examples/quickstart.py
"""

from repro import get_strategy
from repro.core.load import load_from_costs, max_balance_indicator, max_skewness
from repro.core.statistics import IntervalStats
from repro.experiments import ExperimentSpec, ResultsStore
from repro.workloads import ZipfWorkload


def balance_one_operator() -> None:
    """Layer 1: a registry-built strategy balancing a skewed operator."""
    num_tasks = 10
    num_keys = 20_000
    workload = ZipfWorkload(
        num_keys=num_keys,
        skew=0.85,
        tuples_per_interval=200_000,
        fluctuation=0.8,
        num_tasks=num_tasks,
        intervals=5,
        seed=7,
    )

    # Any registered strategy builds the same way; try "mintable" or "readj".
    partitioner = get_strategy("mixed").build(
        num_tasks, theta_max=0.05, max_table_size=2_000, window=1, seed=7
    )

    print(f"{'interval':>8} | {'skew before':>11} | {'skew after':>10} | "
          f"{'migrated %':>10} | {'table':>6} | {'plan ms':>8}")
    print("-" * 66)
    loads_after = {}
    for index, snapshot in enumerate(workload.take(5)):
        stats = IntervalStats.from_frequencies(index, snapshot)
        costs = {key: stat.cost for key, stat in stats.items()}
        loads_before = load_from_costs(costs, partitioner.route, num_tasks)
        result = partitioner.on_interval_end(stats)
        loads_after = load_from_costs(costs, partitioner.route, num_tasks)
        print(
            f"{index:>8} | {max_skewness(loads_before):>11.3f} | "
            f"{max_skewness(loads_after):>10.3f} | "
            f"{(result.migration_fraction * 100 if result else 0):>10.2f} | "
            f"{partitioner.routing_table_size:>6} | "
            f"{(result.generation_time * 1e3 if result else 0):>8.1f}"
        )

    print()
    print(f"max residual imbalance θ = {max_balance_indicator(loads_after):.4f} "
          f"(target θ_max = 0.05)")
    print(f"routing table holds {partitioner.routing_table_size} of "
          f"{num_keys} keys — every other key is still routed by the hash function.")


def run_one_figure() -> None:
    """Layers 2 & 3: a declarative figure run, persisted and reloaded."""
    spec = ExperimentSpec(
        "fig18",
        scale="tiny",
        overrides={"num_keys": 2_000, "tuples_per_interval": 20_000},
        params={"adjustments": 5, "thetas": [0.02, 0.15]},
        seed=7,
    )
    store = ResultsStore("results")
    outcome = spec.run(store=store)
    print()
    print(outcome.result.to_text())
    print()

    reloaded = store.load(outcome.metadata.run_id)
    meta = reloaded.metadata
    print(f"saved and reloaded run {meta.run_id}: {len(reloaded.result.rows)} rows, "
          f"scale={meta.scale}, seed={meta.seed}, wall={meta.wall_time_seconds:.2f}s")
    print("re-run it any time with:  python -m repro run "
          f"results/{meta.run_id}/run.json")


def main() -> None:
    balance_one_operator()
    run_one_figure()


if __name__ == "__main__":
    main()
