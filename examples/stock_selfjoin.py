#!/usr/bin/env python3
"""Stock-exchange self-join under bursty keys, with a scale-out event.

Reproduces the flavour of Figs. 14(b) and 15(b): a windowed self-join keyed by
stock id runs over a bursty trading stream; halfway through the run one extra
task instance is added and the time it takes each strategy to make use of it is
visible in the per-interval throughput series.

Run with:  python examples/stock_selfjoin.py
"""

from repro.experiments.harness import run_simulation
from repro.operators import WindowedSelfJoin
from repro.workloads import StockExchangeWorkload


def main() -> None:
    num_tasks = 8
    intervals = 18
    add_at = 9
    workload = StockExchangeWorkload(
        num_stocks=1036,
        tuples_per_interval=120_000,
        burst_probability=0.02,
        burst_magnitude=15.0,
        intervals=intervals,
        seed=3,
    ).take(intervals)

    print(f"windowed self-join on {1036} stock ids, {num_tasks} tasks "
          f"(+1 at interval {add_at})")
    series = {}
    for strategy in ("storm", "readj", "mixed"):
        collector = run_simulation(
            strategy,
            workload,
            WindowedSelfJoin(window=2),
            num_tasks=num_tasks,
            theta_max=0.1,
            max_table_size=800,
            window=2,
            seed=3,
            scale_out_at={add_at: num_tasks + 1},
        )
        series[strategy] = collector.series("throughput")
        summary = collector.summary()
        print(f"  {strategy:>6}: mean throughput {summary['throughput_mean']:.0f}/s, "
              f"mean latency {summary['latency_ms_mean']:.1f} ms, "
              f"{int(summary['rebalances'])} rebalances")

    print()
    print(f"{'interval':>8} | " + " | ".join(f"{name:>9}" for name in series))
    print("-" * (12 + 12 * len(series)))
    for interval in range(intervals):
        row = " | ".join(f"{series[name][interval]:>9.0f}" for name in series)
        marker = "  <- task added" if interval == add_at else ""
        print(f"{interval:>8} | {row}{marker}")

    print()
    print("Expected: mixed re-balances onto the new instance within one interval;")
    print("readj takes longer; storm's hash never uses the new instance at all.")


if __name__ == "__main__":
    main()
