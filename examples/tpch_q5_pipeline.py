#!/usr/bin/env python3
"""Continuous TPC-H Q5: a multi-operator pipeline with chained keyed joins.

Reproduces the flavour of Fig. 16: lineitem arrivals (with Zipf-skewed foreign
keys) flow through order-join → customer-join → revenue-aggregation; a
distribution change is triggered periodically and the pipeline throughput over
time shows how each strategy copes with the resulting intra-operator imbalance.

Run with:  python examples/tpch_q5_pipeline.py
"""

from repro import get_strategy
from repro.engine import PipelineSimulator, SimulationConfig
from repro.operators import build_q5_topology
from repro.workloads import TPCHStreamWorkload, generate_tpch


def main() -> None:
    dataset = generate_tpch(scale=0.002, fk_skew=0.8, seed=5)
    intervals = 16
    workload = TPCHStreamWorkload(
        dataset,
        tuples_per_interval=40_000,
        intervals=intervals,
        change_every=5,
        seed=5,
    ).take(intervals)

    print(f"TPC-H slice: {dataset.num_orders} orders, {dataset.num_customers} customers, "
          f"{len(dataset.lineitems)} lineitems; distribution change every 5 intervals")
    print()

    series = {}
    for strategy in ("storm", "readj", "mixed"):
        strategy_spec = get_strategy(strategy)

        def factory(stage_name: str, parallelism: int, _spec=strategy_spec):
            return _spec.build(
                parallelism, theta_max=0.1, max_table_size=2_000, window=5, seed=5
            )

        topology = build_q5_topology(dataset, factory, parallelism=8, window=5)
        simulator = PipelineSimulator(topology, SimulationConfig(capacity_factor=1.1))
        run = simulator.run(workload)
        series[strategy] = run.pipeline.series("throughput")
        print(f"  {strategy:>6}: mean pipeline throughput "
              f"{run.pipeline.mean_throughput:.0f}/s, "
              f"end-to-end latency {run.pipeline.mean_latency_ms:.0f} ms")
        for stage_name, metrics in run.stages.items():
            print(f"        {stage_name:<14} skew={metrics.mean_skewness:.2f} "
                  f"rebalances={metrics.rebalance_count}")

    print()
    print(f"{'interval':>8} | " + " | ".join(f"{name:>9}" for name in series))
    print("-" * (12 + 12 * len(series)))
    for interval in range(intervals):
        row = " | ".join(f"{series[name][interval]:>9.0f}" for name in series)
        marker = "  <- distribution change" if interval and interval % 5 == 0 else ""
        print(f"{interval:>8} | {row}{marker}")


if __name__ == "__main__":
    main()
