#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation through the spec runner.

Usage:
    python examples/reproduce_all.py [tiny|small|paper] [fig07 fig08 ...]

Without arguments every registered figure runs at the "tiny" preset (a couple
of minutes total).  Passing "small" or "paper" scales the workloads up;
passing figure ids restricts the run to those figures.  Every run is
persisted under ./results (inspect them later with `python -m repro list
--runs` / `python -m repro report <run-id>`).
"""

import sys

from repro.experiments import ExperimentSpec, ResultsStore, run_batch
from repro.experiments.config import SCALES
from repro.experiments.specs import experiment_names


def main() -> None:
    args = sys.argv[1:]
    scale = "tiny"
    requested = []
    for arg in args:
        if arg in SCALES:
            scale = arg
        elif arg in experiment_names():
            requested.append(arg)
        else:
            raise SystemExit(
                f"unknown argument {arg!r}; scales: {sorted(SCALES)}, "
                f"figures: {experiment_names()}"
            )
    targets = requested or experiment_names()

    print(f"Reproducing {len(targets)} figure(s) at scale '{scale}'")
    print("=" * 78)

    def report(outcome) -> None:
        meta = outcome.metadata
        print()
        print(outcome.result.to_text())
        print(f"[{meta.experiment} completed in {meta.wall_time_seconds:.1f}s "
              f"-> results/{meta.run_id}]")
        print("=" * 78)

    run_batch(
        [ExperimentSpec(name, scale=scale) for name in targets],
        store=ResultsStore("results"),
        on_result=report,
    )


if __name__ == "__main__":
    main()
