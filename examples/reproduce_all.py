#!/usr/bin/env python3
"""Regenerate every figure of the paper's evaluation and print the series.

Usage:
    python examples/reproduce_all.py [tiny|small|paper] [fig07 fig08 ...]

Without arguments every figure driver runs at the "tiny" preset (a couple of
minutes total).  Passing "small" or "paper" scales the workloads up; passing
figure ids restricts the run to those figures.
"""

import sys
import time

from repro.experiments import figures
from repro.experiments.config import SCALES


def main() -> None:
    args = sys.argv[1:]
    scale = "tiny"
    requested = []
    for arg in args:
        if arg in SCALES:
            scale = arg
        elif arg in figures.ALL_FIGURES:
            requested.append(arg)
        else:
            raise SystemExit(
                f"unknown argument {arg!r}; scales: {sorted(SCALES)}, "
                f"figures: {sorted(figures.ALL_FIGURES)}"
            )
    targets = requested or sorted(figures.ALL_FIGURES)

    print(f"Reproducing {len(targets)} figure(s) at scale '{scale}'")
    print("=" * 78)
    for figure_id in targets:
        driver = figures.ALL_FIGURES[figure_id]
        start = time.perf_counter()
        result = driver(scale)
        elapsed = time.perf_counter() - start
        print()
        print(result.to_text())
        print(f"[{figure_id} completed in {elapsed:.1f}s]")
        print("=" * 78)


if __name__ == "__main__":
    main()
