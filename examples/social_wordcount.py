#!/usr/bin/env python3
"""Word count on the Social-feed surrogate: Storm hashing vs Readj vs Mixed vs PKG.

Reproduces the flavour of Fig. 14(a): the same word-count operator is driven by
the same slowly-drifting, heavy-tailed word stream under four partitioning
strategies, and the sustained throughput, latency and workload skewness are
compared.

Run with:  python examples/social_wordcount.py
"""

from repro.experiments.harness import run_simulation
from repro.operators import WordCountOperator
from repro.workloads import SocialFeedWorkload


def main() -> None:
    num_tasks = 10
    theta_max = 0.05
    intervals = 15
    workload = SocialFeedWorkload(
        num_words=20_000,
        tuples_per_interval=150_000,
        intervals=intervals,
        seed=11,
    ).take(intervals)

    print(f"word count over {intervals} intervals, {num_tasks} tasks, "
          f"theta_max={theta_max}")
    print(f"{'strategy':>9} | {'throughput/s':>12} | {'latency ms':>10} | "
          f"{'skewness':>8} | {'rebalances':>10}")
    print("-" * 62)
    for strategy in ("storm", "readj", "mixed", "pkg", "mintable"):
        collector = run_simulation(
            strategy,
            workload,
            WordCountOperator(window=1),
            num_tasks=num_tasks,
            theta_max=theta_max,
            max_table_size=2_000,
            seed=11,
        )
        summary = collector.summary()
        print(
            f"{strategy:>9} | {summary['throughput_mean']:>12.0f} | "
            f"{summary['latency_ms_mean']:>10.1f} | "
            f"{summary['skewness_mean']:>8.3f} | {int(summary['rebalances']):>10}"
        )

    print()
    print("Expected ordering (paper Fig. 14(a)): mixed sustains the best throughput;")
    print("pkg is close but pays merge latency; readj and plain Storm hashing trail.")


if __name__ == "__main__":
    main()
