#!/usr/bin/env python3
"""Microbenchmark of the StreamRouter dispatch hot path: routed tuples/s.

The coordinator-bound configuration: one router dispatching a Zipf-skewed
key stream into no-op sink queues, so the dispatch path — routing,
accounting, task-major grouping — is the only measured cost.  Two
implementations run on the identical stream:

* **vectorized** — the shipped :class:`~repro.runtime.router.StreamRouter`
  (chunk-level Counter/np.bincount accounting, batched costs, one-pass
  grouping);
* **per-tuple reference** — a faithful port of the pre-vectorization
  dispatch loop (per-tuple dict updates and ``setdefault`` grouping), kept
  here so the speedup stays a *tracked number* in the benchmark trajectory.

Usage::

    PYTHONPATH=src python scripts/bench_router.py
    PYTHONPATH=src python scripts/bench_router.py --tuples 500000 --tasks 8
    PYTHONPATH=src python scripts/bench_router.py --merge-into BENCH_runtime.json

``--merge-into`` folds the result into an existing ``BENCH_runtime.json``
report under the ``router_micro`` key (validated by
``scripts/validate_bench.py``); without it the JSON payload prints to
stdout.  CI runs this in the bench-trajectory job on every push.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path
from typing import Any, Dict, Hashable, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np  # noqa: E402

from repro.baselines.hash_only import HashPartitioner  # noqa: E402
from repro.core.hashing import memo_key  # noqa: E402
from repro.engine.operator import OperatorLogic  # noqa: E402
from repro.operators.windowed_join import WindowedJoin  # noqa: E402
from repro.runtime.messages import TupleBatch  # noqa: E402
from repro.runtime.router import StreamRouter  # noqa: E402

Key = Hashable


class _SinkQueue:
    """No-op worker queue: makes the dispatcher the only measured cost."""

    __slots__ = ("batches",)

    def __init__(self) -> None:
        self.batches = 0

    def put(self, item: Any, timeout: Optional[float] = None) -> None:
        self.batches += 1


class _ReferenceRouter:
    """The pre-vectorization dispatch loop (per-tuple accounting), verbatim.

    Port of the old ``StreamRouter._dispatch_chunk`` *and* the old
    ``Partitioner.assign_batch``: one :func:`memo_key`-boxed memo lookup per
    key, one dict update per tuple for freqs / offered tuples / offered
    cost, one ``tuple_cost`` call per tuple, a per-tuple paused-key
    membership test and ``per_task.setdefault`` grouping.  Exists purely as
    the baseline this benchmark compares against (the shipped router now
    does all of this chunk-at-a-time).
    """

    def __init__(
        self,
        partitioner: HashPartitioner,
        logic: OperatorLogic,
        worker_queues: List[_SinkQueue],
        batch_size: int,
    ) -> None:
        self.partitioner = partitioner
        self.logic = logic
        self.worker_queues = worker_queues
        self.batch_size = batch_size
        self.freqs: Dict[Key, float] = {}
        self.offered_tuples: Dict[int, float] = {
            task: 0.0 for task in range(len(worker_queues))
        }
        self.offered_cost: Dict[int, float] = {
            task: 0.0 for task in range(len(worker_queues))
        }
        self._paused_keys: set = set()
        self._route_cache: Dict[Any, int] = {}

    def _assign_batch(self, keys: List[Key]) -> List[int]:
        """The pre-PR memoised batch assignment (per-key memo_key boxing)."""
        cache = self._route_cache
        cache_get = cache.get
        route = self.partitioner.route
        out: List[int] = []
        for key in keys:
            memo = memo_key(key)
            if memo is None:
                out.append(route(key))
                continue
            task = cache_get(memo)
            if task is None:
                task = cache[memo] = route(key)
            out.append(task)
        return out

    def dispatch(self, pairs: List[Tuple[Key, Any]]) -> None:
        for start in range(0, len(pairs), self.batch_size):
            self._dispatch_chunk(pairs[start : start + self.batch_size])

    def _dispatch_chunk(self, chunk: List[Tuple[Key, Any]]) -> None:
        tuple_cost = self.logic.tuple_cost
        destinations = self._assign_batch([key for key, _ in chunk])
        per_task: Dict[int, List[Tuple[Key, Any]]] = {}
        now = time.monotonic()
        freqs = self.freqs
        offered_tuples = self.offered_tuples
        offered_cost = self.offered_cost
        for (key, value), task in zip(chunk, destinations):
            freqs[key] = freqs.get(key, 0.0) + 1.0
            offered_tuples[task] = offered_tuples.get(task, 0.0) + 1.0
            offered_cost[task] = offered_cost.get(task, 0.0) + tuple_cost(key, value)
            if key in self._paused_keys:
                continue
            per_task.setdefault(task, []).append((key, value))
        for task, batch in per_task.items():
            keys = [key for key, _ in batch]
            values = [value for _, value in batch]
            self.worker_queues[task].put(
                TupleBatch(interval=0, sent_at=now, keys=keys, values=values)
            )


def _zipf_keys(
    num_tuples: int, num_keys: int, skew: float, seed: int
) -> List[int]:
    ranks = np.arange(1, num_keys + 1, dtype=np.float64)
    weights = ranks ** (-skew)
    probabilities = weights / weights.sum()
    rng = np.random.default_rng(seed)
    return rng.choice(num_keys, size=num_tuples, p=probabilities).tolist()


def _measure(run, tuples: int, repeats: int) -> float:
    """Best-of-``repeats`` routed tuples/s (ignores scheduler hiccups)."""
    best = 0.0
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        elapsed = time.perf_counter() - started
        if elapsed > 0:
            best = max(best, tuples / elapsed)
    return best


def run_benchmark(
    *,
    num_tuples: int = 400_000,
    num_tasks: int = 4,
    num_keys: int = 20_000,
    batch_size: int = 4096,
    skew: float = 1.2,
    seed: int = 0,
    repeats: int = 5,
) -> Dict[str, Any]:
    """Measure both dispatch implementations on one Zipf key stream.

    The defaults are the *coordinator-bound* configuration: large micro
    batches (4096) into free sinks, i.e. the regime a chain enters when its
    dispatcher thread — not its workers — limits throughput, which is
    exactly where the vectorised chunk operations pay.
    """
    keys = _zipf_keys(num_tuples, num_keys, skew, seed)
    values = [1.0] * num_tuples
    pairs = list(zip(keys, values))
    # The cost model of the Q5 chain's join stages (DimensionJoin subclasses
    # WindowedJoin): an affine per-tuple cost, which the vectorized path
    # evaluates once per chunk and the reference once per tuple.
    logic = WindowedJoin(window=2, cost_per_tuple=0.75, cost_per_match=0.05)

    # Steady-state dispatch: the router a coordinator thread runs all day,
    # route memos warm (they persist across intervals in situ).  Both
    # implementations are warmed with one full pass before measuring.
    router = StreamRouter(
        HashPartitioner(num_tasks, seed=seed),
        logic,
        [_SinkQueue() for _ in range(num_tasks)],
        batch_size=batch_size,
    )
    router.begin_interval(0)
    reference = _ReferenceRouter(
        HashPartitioner(num_tasks, seed=seed),
        logic,
        [_SinkQueue() for _ in range(num_tasks)],
        batch_size,
    )

    def run_vectorized() -> None:
        # Fresh interval account per pass: steady per-interval accounting
        # without unbounded growth across repeats.
        router.pop_interval(0)
        router.begin_interval(0)
        router.dispatch(keys, values)

    def run_reference() -> None:
        reference.freqs.clear()
        reference.dispatch(pairs)

    # Warm the route memo / hash-digest caches out of the measurement.
    run_vectorized()
    run_reference()

    vectorized = _measure(run_vectorized, num_tuples, repeats)
    reference = _measure(run_reference, num_tuples, repeats)
    return {
        "tuples": num_tuples,
        "num_tasks": num_tasks,
        "num_keys": num_keys,
        "batch_size": batch_size,
        "skew": skew,
        "vectorized_tuples_per_s": vectorized,
        "reference_tuples_per_s": reference,
        "speedup": vectorized / reference if reference > 0 else 0.0,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tuples", type=int, default=400_000)
    parser.add_argument("--tasks", type=int, default=4)
    parser.add_argument("--keys", type=int, default=20_000)
    parser.add_argument("--batch-size", type=int, default=4096)
    parser.add_argument("--skew", type=float, default=1.2)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument(
        "--merge-into",
        default=None,
        metavar="BENCH_runtime.json",
        help="fold the result into an existing bench report (router_micro key)",
    )
    args = parser.parse_args(argv)

    result = run_benchmark(
        num_tuples=args.tuples,
        num_tasks=args.tasks,
        num_keys=args.keys,
        batch_size=args.batch_size,
        skew=args.skew,
        seed=args.seed,
        repeats=args.repeats,
    )
    print(
        f"routed tuples/s: vectorized {result['vectorized_tuples_per_s']:,.0f} "
        f"vs per-tuple reference {result['reference_tuples_per_s']:,.0f} "
        f"({result['speedup']:.2f}x)",
        file=sys.stderr,
    )
    if args.merge_into:
        path = Path(args.merge_into)
        payload = json.loads(path.read_text())
        payload["router_micro"] = result
        path.write_text(json.dumps(payload, indent=1))
        print(f"merged router_micro into {path}", file=sys.stderr)
    else:
        print(json.dumps(result, indent=1))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
