#!/usr/bin/env python3
"""Validate the schema of a BENCH_runtime.json benchmark report.

CI runs this against the report produced by the bench-trajectory job before
uploading it as the per-commit artifact, so a refactor that silently drops
measured throughput/latency keys (or writes empty rows) fails the build
instead of poisoning the benchmark trajectory.

Usage::

    python scripts/validate_bench.py BENCH_runtime.json

Standalone on purpose: no repro import, so it also validates reports from
older commits when comparing trajectory artifacts.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: Every bench row (single-stage, per-stage and chain rows alike) must carry
#: these measured quantities.
REQUIRED_ROW_KEYS = (
    "strategy",
    "tuples",
    "wall_seconds",
    "tuples_per_second",
    "latency_p50_ms",
    "latency_p99_ms",
)

REQUIRED_METADATA_KEYS = ("run_id", "engine", "created_at", "git_rev")


def _fail(message: str):
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _check_number(row_label: str, key: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{row_label}: {key} is {value!r}, expected a number")
    if not math.isfinite(value):
        _fail(f"{row_label}: {key} is {value!r}, expected a finite number")
    if value < 0:
        _fail(f"{row_label}: {key} is negative ({value!r})")


def validate_report(payload: dict) -> int:
    """Validate one parsed report; returns the number of rows checked."""
    if not isinstance(payload, dict):
        _fail("report root must be a JSON object")

    metadata = payload.get("metadata")
    if not isinstance(metadata, dict):
        _fail("missing 'metadata' object")
    for key in REQUIRED_METADATA_KEYS:
        if key not in metadata:
            _fail(f"metadata is missing {key!r}")
    if metadata.get("engine") != "process":
        _fail(f"metadata.engine is {metadata.get('engine')!r}, expected 'process'")

    spec = payload.get("spec")
    if not isinstance(spec, dict) or "workload" not in spec:
        _fail("missing 'spec' object with a 'workload'")

    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        _fail("missing or empty 'rows' list")
    for index, row in enumerate(rows):
        label = f"rows[{index}]"
        if not isinstance(row, dict):
            _fail(f"{label} is not an object")
        for key in REQUIRED_ROW_KEYS:
            if key not in row:
                _fail(f"{label} ({row.get('strategy')!r}) is missing {key!r}")
        for key in REQUIRED_ROW_KEYS[1:]:
            _check_number(label, key, row[key])
        if row["tuples"] <= 0 or row["tuples_per_second"] <= 0:
            _fail(f"{label}: no measured work (tuples={row['tuples']!r})")
        if row["latency_p99_ms"] < row["latency_p50_ms"]:
            _fail(f"{label}: p99 < p50 ({row['latency_p99_ms']} < {row['latency_p50_ms']})")

    per_strategy = payload.get("per_strategy")
    if not isinstance(per_strategy, dict) or not per_strategy:
        _fail("missing or empty 'per_strategy' object")
    strategies = {row["strategy"] for row in rows}
    if set(per_strategy) != strategies:
        _fail(
            f"per_strategy keys {sorted(per_strategy)} do not match row "
            f"strategies {sorted(strategies)}"
        )
    return len(rows)


def main(argv) -> int:
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.is_file():
        _fail(f"no such report: {path}")
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        _fail(f"{path} is not valid JSON: {exc}")
    rows = validate_report(payload)
    workload = payload["spec"].get("workload")
    print(f"OK: {path} — {rows} measured rows ({workload}), schema valid")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
