#!/usr/bin/env python3
"""Validate the schema of a BENCH_runtime.json benchmark report.

CI runs this against the report produced by the bench-trajectory job before
uploading it as the per-commit artifact, so a refactor that silently drops
measured throughput/latency keys (or writes empty rows) fails the build
instead of poisoning the benchmark trajectory.

Usage::

    python scripts/validate_bench.py BENCH_runtime.json

Standalone on purpose: no repro import, so it also validates reports from
older commits when comparing trajectory artifacts.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path

#: Every bench row (single-stage, per-stage and chain rows alike) must carry
#: these measured quantities.
REQUIRED_ROW_KEYS = (
    "strategy",
    "tuples",
    "wall_seconds",
    "tuples_per_second",
    "latency_p50_ms",
    "latency_p99_ms",
)

REQUIRED_METADATA_KEYS = ("run_id", "engine", "created_at", "git_rev")

#: Measured quantities of the optional ``router_micro`` section (written by
#: ``scripts/bench_router.py --merge-into``).
REQUIRED_ROUTER_MICRO_KEYS = (
    "tuples",
    "num_tasks",
    "batch_size",
    "vectorized_tuples_per_s",
    "reference_tuples_per_s",
    "speedup",
)


def _fail(message: str):
    print(f"FAIL: {message}", file=sys.stderr)
    raise SystemExit(1)


def _check_number(row_label: str, key: str, value) -> None:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        _fail(f"{row_label}: {key} is {value!r}, expected a number")
    if not math.isfinite(value):
        _fail(f"{row_label}: {key} is {value!r}, expected a finite number")
    if value < 0:
        _fail(f"{row_label}: {key} is negative ({value!r})")


def validate_report(payload: dict) -> int:
    """Validate one parsed report; returns the number of rows checked."""
    if not isinstance(payload, dict):
        _fail("report root must be a JSON object")

    metadata = payload.get("metadata")
    if not isinstance(metadata, dict):
        _fail("missing 'metadata' object")
    for key in REQUIRED_METADATA_KEYS:
        if key not in metadata:
            _fail(f"metadata is missing {key!r}")
    if metadata.get("engine") != "process":
        _fail(f"metadata.engine is {metadata.get('engine')!r}, expected 'process'")

    spec = payload.get("spec")
    if not isinstance(spec, dict) or "workload" not in spec:
        _fail("missing 'spec' object with a 'workload'")

    rows = payload.get("rows")
    if not isinstance(rows, list) or not rows:
        _fail("missing or empty 'rows' list")
    for index, row in enumerate(rows):
        label = f"rows[{index}]"
        if not isinstance(row, dict):
            _fail(f"{label} is not an object")
        for key in REQUIRED_ROW_KEYS:
            if key not in row:
                _fail(f"{label} ({row.get('strategy')!r}) is missing {key!r}")
        for key in REQUIRED_ROW_KEYS[1:]:
            _check_number(label, key, row[key])
        if row["tuples"] <= 0 or row["tuples_per_second"] <= 0:
            _fail(f"{label}: no measured work (tuples={row['tuples']!r})")
        if row["latency_p99_ms"] < row["latency_p50_ms"]:
            _fail(f"{label}: p99 < p50 ({row['latency_p99_ms']} < {row['latency_p50_ms']})")

    per_strategy = payload.get("per_strategy")
    if not isinstance(per_strategy, dict) or not per_strategy:
        _fail("missing or empty 'per_strategy' object")
    strategies = {row["strategy"] for row in rows}
    if set(per_strategy) != strategies:
        _fail(
            f"per_strategy keys {sorted(per_strategy)} do not match row "
            f"strategies {sorted(strategies)}"
        )

    _validate_rate_sweep(spec, rows)
    _validate_resilience(spec, per_strategy)
    _validate_fan_in(rows, payload.get("sanitizer"))
    if "router_micro" in payload:
        _validate_router_micro(payload["router_micro"])
    if "sanitizer" in payload:
        _validate_sanitizer(payload["sanitizer"])
    return len(rows)


#: Split-key routing statistics a key-splitting stage row reports together.
SPLIT_STAT_KEYS = ("split_keys", "total_partials", "max_partials_per_key")


def _validate_fan_in(rows: list, sanitizer) -> None:
    """DAG stage rows: sane ``upstreams`` counts, and fan-in checks fired.

    A stage row with ``upstreams >= 2`` is a fan-in consumer; if the run was
    sanitized, the multi-origin checks (``fan_in_watermark`` /
    ``fan_in_conservation``) must actually have been evaluated — a diamond
    bench whose sanitizer never saw a fan-in edge means the instrumentation
    came unwired.  Split statistics, when present, must arrive as a complete,
    consistent set.
    """
    fan_in_rows = []
    for index, row in enumerate(rows):
        label = f"rows[{index}]"
        if "upstreams" in row:
            _check_number(label, "upstreams", row["upstreams"])
            if row["upstreams"] >= 2:
                fan_in_rows.append(label)
        present = [key for key in SPLIT_STAT_KEYS if key in row]
        if present and len(present) != len(SPLIT_STAT_KEYS):
            _fail(
                f"{label}: partial split statistics {present}, expected all "
                f"of {list(SPLIT_STAT_KEYS)}"
            )
        for key in present:
            _check_number(label, key, row[key])
        if present and row["split_keys"] > 0 and row["max_partials_per_key"] < 2:
            _fail(
                f"{label}: {row['split_keys']} split keys but "
                f"max_partials_per_key is {row['max_partials_per_key']}"
            )
    if fan_in_rows and isinstance(sanitizer, dict):
        checks = sanitizer.get("checks") or {}
        for check in ("fan_in_watermark", "fan_in_conservation"):
            if checks.get(check, 0) <= 0:
                _fail(
                    f"{fan_in_rows[0]} is a fan-in stage (upstreams >= 2) but "
                    f"sanitizer check {check!r} never fired: {checks}"
                )


def _validate_rate_sweep(spec: dict, rows: list) -> None:
    """Rate-sweep reports carry one row per (strategy, rate), rates ascending."""
    sweep = spec.get("rate_sweep")
    swept_rows = [row for row in rows if "offered_rate" in row]
    if not sweep:
        if swept_rows:
            _fail("rows carry 'offered_rate' but spec has no rate_sweep")
        return
    if not isinstance(sweep, list) or len(sweep) < 2:
        _fail(f"spec.rate_sweep must list at least 2 rates, got {sweep!r}")
    if any(b <= a for a, b in zip(sweep, sweep[1:])):
        _fail(f"spec.rate_sweep is not strictly ascending: {sweep}")
    per_strategy_rates: dict = {}
    for row in rows:
        if "offered_rate" not in row:
            _fail(f"rate-sweep row ({row.get('strategy')!r}) missing 'offered_rate'")
        _check_number("rate-sweep row", "offered_rate", row["offered_rate"])
        per_strategy_rates.setdefault(row["strategy"], []).append(
            row["offered_rate"]
        )
    for strategy, rates in per_strategy_rates.items():
        if rates != sorted(rates) or len(set(rates)) != len(rates):
            _fail(
                f"strategy {strategy!r}: offered-rate series is not strictly "
                f"ascending: {rates}"
            )
        if len(rates) != len(sweep):
            _fail(
                f"strategy {strategy!r}: {len(rates)} swept rows but "
                f"spec.rate_sweep has {len(sweep)} rates"
            )


#: Measured quantities of one supervised-recovery incident.
REQUIRED_INCIDENT_KEYS = (
    "stage",
    "task",
    "interval",
    "recovery_pause_seconds",
    "restore_seconds",
)

#: Measured quantities of one elastic resize.
REQUIRED_SCALE_EVENT_KEYS = (
    "stage",
    "interval",
    "delta",
    "from_tasks",
    "to_tasks",
    "moved_keys",
    "rebalance_pause_seconds",
)


def _validate_resilience(spec: dict, per_strategy: dict) -> None:
    """The resilience section: measured incidents/resizes match the spec.

    A spec that injects a kill (``spec.kill_worker``) must produce at least
    one recovery incident per strategy, and a spec that schedules a resize
    (``spec.scale_at``) at least one scale event — a report that silently
    dropped the injection would otherwise read as a flawless run.
    """
    kill_expected = bool(spec.get("kill_worker"))
    scale_expected = bool(spec.get("scale_at"))
    for strategy, report in per_strategy.items():
        if not isinstance(report, dict):
            _fail(f"per_strategy[{strategy!r}] is not an object")
        resilience = report.get("resilience")
        if resilience is None:
            if kill_expected or scale_expected:
                _fail(
                    f"spec injects kill_worker/scale_at but strategy "
                    f"{strategy!r} has no resilience section"
                )
            continue
        label = f"per_strategy[{strategy!r}].resilience"
        if not isinstance(resilience, dict):
            _fail(f"{label} is not an object")
        incidents = resilience.get("incidents")
        scale_events = resilience.get("scale_events")
        if not isinstance(incidents, list) or not isinstance(scale_events, list):
            _fail(f"{label} needs 'incidents' and 'scale_events' lists")
        if kill_expected and not incidents:
            _fail(f"{label}: spec.kill_worker set but no recovery incident")
        if scale_expected and not scale_events:
            _fail(f"{label}: spec.scale_at set but no scale event")
        for index, incident in enumerate(incidents):
            entry = f"{label}.incidents[{index}]"
            if not isinstance(incident, dict):
                _fail(f"{entry} is not an object")
            for key in REQUIRED_INCIDENT_KEYS:
                if key not in incident:
                    _fail(f"{entry} is missing {key!r}")
            _check_number(entry, "recovery_pause_seconds", incident["recovery_pause_seconds"])
            _check_number(entry, "restore_seconds", incident["restore_seconds"])
            if incident["recovery_pause_seconds"] <= 0:
                _fail(f"{entry}: recovery pause was not measured (<= 0)")
        for index, event in enumerate(scale_events):
            entry = f"{label}.scale_events[{index}]"
            if not isinstance(event, dict):
                _fail(f"{entry} is not an object")
            for key in REQUIRED_SCALE_EVENT_KEYS:
                if key not in event:
                    _fail(f"{entry} is missing {key!r}")
            _check_number(entry, "rebalance_pause_seconds", event["rebalance_pause_seconds"])
            _check_number(entry, "moved_keys", event["moved_keys"])
            if event["to_tasks"] != event["from_tasks"] + event["delta"]:
                _fail(
                    f"{entry}: to_tasks ({event['to_tasks']}) != from_tasks "
                    f"({event['from_tasks']}) + delta ({event['delta']})"
                )
        checkpoints = resilience.get("checkpoints")
        if not isinstance(checkpoints, dict):
            _fail(f"{label} needs a 'checkpoints' object")
        for key in ("count", "bytes_written", "write_seconds"):
            if key not in checkpoints:
                _fail(f"{label}.checkpoints is missing {key!r}")
            _check_number(f"{label}.checkpoints", key, checkpoints[key])
        if kill_expected and checkpoints["bytes_written"] <= 0:
            _fail(
                f"{label}: spec.kill_worker set but no checkpoint bytes "
                f"were written"
            )


def _validate_router_micro(micro) -> None:
    """The router microbenchmark section: positive figures, consistent ratio."""
    if not isinstance(micro, dict):
        _fail("router_micro must be an object")
    for key in REQUIRED_ROUTER_MICRO_KEYS:
        if key not in micro:
            _fail(f"router_micro is missing {key!r}")
        _check_number("router_micro", key, micro[key])
        if micro[key] <= 0:
            _fail(f"router_micro.{key} must be positive, got {micro[key]!r}")
    ratio = micro["vectorized_tuples_per_s"] / micro["reference_tuples_per_s"]
    if abs(ratio - micro["speedup"]) > 1e-6 * max(ratio, micro["speedup"]):
        _fail(
            f"router_micro.speedup ({micro['speedup']}) does not match "
            f"vectorized/reference ({ratio})"
        )


def _validate_sanitizer(report) -> None:
    """The protocol-sanitizer section: zero violations AND non-trivial checks.

    A "clean" report whose check counters are all zero means the sanitizer
    hooks never fired — a wiring regression, not a clean run — so it fails
    just like a violation would.
    """
    if not isinstance(report, dict):
        _fail("sanitizer must be an object")
    if not report.get("enabled"):
        _fail("sanitizer section present but not marked enabled")
    violations = report.get("violations")
    if not isinstance(violations, list):
        _fail("sanitizer.violations must be a list")
    if violations:
        rendered = "; ".join(
            f"{v.get('check')}@{v.get('stage')}: {v.get('message')}"
            for v in violations[:5]
        )
        _fail(f"sanitizer recorded {len(violations)} violation(s): {rendered}")
    checks = report.get("checks")
    if not isinstance(checks, dict) or not checks:
        _fail("sanitizer.checks is missing or empty (hooks never fired)")
    if sum(checks.values()) <= 0:
        _fail(f"sanitizer.checks are all zero: {checks}")
    if report.get("ok") is not True:
        _fail("sanitizer.ok must be true when violations are empty")


def main(argv) -> int:
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    path = Path(argv[0])
    if not path.is_file():
        _fail(f"no such report: {path}")
    try:
        payload = json.loads(path.read_text())
    except ValueError as exc:
        _fail(f"{path} is not valid JSON: {exc}")
    rows = validate_report(payload)
    workload = payload["spec"].get("workload")
    extras = []
    if payload["spec"].get("rate_sweep"):
        extras.append(f"rate sweep x{len(payload['spec']['rate_sweep'])}")
    if "router_micro" in payload:
        extras.append(
            f"router micro {payload['router_micro']['speedup']:.2f}x"
        )
    if payload["spec"].get("kill_worker"):
        incidents = sum(
            len(report.get("resilience", {}).get("incidents", []))
            for report in payload["per_strategy"].values()
        )
        extras.append(f"kill {payload['spec']['kill_worker']}: {incidents} recovered")
    if payload["spec"].get("scale_at"):
        events = sum(
            len(report.get("resilience", {}).get("scale_events", []))
            for report in payload["per_strategy"].values()
        )
        extras.append(f"scale {payload['spec']['scale_at']}: {events} resized")
    if "sanitizer" in payload:
        checked = sum(payload["sanitizer"]["checks"].values())
        extras.append(f"sanitizer clean ({checked} checks)")
    suffix = f" [{', '.join(extras)}]" if extras else ""
    print(f"OK: {path} — {rows} measured rows ({workload}), schema valid{suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
