#!/usr/bin/env python3
"""Gate a BENCH_runtime.json report against the checked-in bench baseline.

CI's bench-trajectory job runs this after schema validation: each measured
row of the commit's report is compared against the same row of
``benchmarks/baseline_bench.json`` with per-metric tolerance bands —

* **throughput** (``tuples_per_second``): a drop beyond 20% of the baseline
  FAILS the build; a drop beyond half the band (10%) prints a WARN;
* **tail latency** (``latency_p99_ms``): a rise beyond 50% of the baseline
  *and* beyond 15 ms absolute FAILS; half of both thresholds WARNs.  The
  absolute slack keeps the nearly-idle rows honest: a lightly-loaded final
  stage has a single-digit-ms p99 where scheduler jitter alone is worth
  tens of percent.

Improvements never fail.  A row present in the baseline but missing from the
report fails (coverage regression); a row the baseline has never seen warns
(new benchmark — refresh the baseline to start gating it).  Pacing
(``--service-time-us``) makes the measured figures dominated by the emulated
service time rather than host speed, which is what makes a checked-in
baseline meaningful across runner generations; the bands are sized for the
residual machine-to-machine jitter.

Usage::

    python scripts/compare_bench.py BENCH_runtime.json \
        --baseline benchmarks/baseline_bench.json

**Refreshing the baseline** (after an intentional performance change, or
when a new workload/strategy row appears): regenerate the report(s) with the
exact bench flags CI uses (see .github/workflows/ci.yml, bench-trajectory
job), fold each into the baseline, and commit the result::

    PYTHONPATH=src python -m repro bench tpch_q5_chain --parallelism 2 \
        --scale tiny --sanitize --output BENCH_runtime.json
    python scripts/compare_bench.py BENCH_runtime.json \
        --baseline benchmarks/baseline_bench.json --write-baseline

``--write-baseline`` replaces only the report's own workload section, so
refreshing one workload never clobbers the others' baselines.

Standalone on purpose: no repro import, stdlib only — it must keep working
against reports from older commits.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Gated metrics: (key, direction, fail fraction, absolute slack).
#: ``direction`` is +1 when bigger is better (throughput), -1 when smaller is
#: better (latency).  A row fails only when the regression exceeds *both* the
#: fraction of the baseline and the absolute slack (in the metric's unit) —
#: the slack keeps small-valued noisy rows from tripping the relative band.
GATES = (
    ("tuples_per_second", +1, 0.20, 0.0),
    ("latency_p99_ms", -1, 0.50, 15.0),
)

#: A WARN prints once the regression passes this fraction of the fail band.
WARN_FRACTION = 0.5


def _row_key(row: dict) -> str:
    parts = [str(row.get("strategy", "?"))]
    if "stage" in row:
        parts.append(str(row["stage"]))
    if "offered_rate" in row:
        parts.append(f"@{row['offered_rate']:g}")
    return "|".join(parts)


def _extract(report: dict) -> tuple[str, dict]:
    """Reduce a full bench report to ``(workload, {row key: gated metrics})``."""
    workload = report.get("spec", {}).get("workload")
    if not workload:
        raise SystemExit("FAIL: report has no spec.workload")
    rows = {}
    for row in report.get("rows", []):
        rows[_row_key(row)] = {
            key: row[key] for key, _, _, _ in GATES if key in row
        }
    if not rows:
        raise SystemExit("FAIL: report has no rows to compare")
    return workload, rows


def _write_baseline(path: Path, workload: str, rows: dict, report: dict) -> None:
    baseline = {}
    if path.is_file():
        baseline = json.loads(path.read_text())
    baseline.setdefault("workloads", {})[workload] = {
        "run_id": report.get("metadata", {}).get("run_id"),
        "git_rev": report.get("metadata", {}).get("git_rev"),
        "rows": rows,
    }
    path.write_text(json.dumps(baseline, indent=1, sort_keys=True) + "\n")
    print(f"baseline updated: {path} [{workload}: {len(rows)} rows]")


def _compare(current: dict, recorded: dict, label: str) -> list[str]:
    """One row against its baseline; returns FAIL messages, prints WARN/ok."""
    failures = []
    for key, direction, band, slack in GATES:
        if key not in recorded:
            continue
        if key not in current:
            failures.append(f"{label}: metric {key!r} disappeared from report")
            continue
        base, now = float(recorded[key]), float(current[key])
        if base <= 0:
            continue
        # Signed regression: positive = worse, whichever direction.  The
        # fraction drives the band; the raw delta must also clear the
        # absolute slack so tiny noisy values can't trip the gate.
        delta = direction * (base - now)
        regression = delta / base
        if regression > band and delta > slack:
            failures.append(
                f"{label}: {key} {now:,.1f} vs baseline {base:,.1f} "
                f"({regression:+.1%} worse, band {band:.0%})"
            )
        elif regression > band * WARN_FRACTION and delta > slack * WARN_FRACTION:
            print(
                f"WARN {label}: {key} {now:,.1f} vs baseline {base:,.1f} "
                f"({regression:+.1%} worse, fails beyond {band:.0%})"
            )
    return failures


def main(argv) -> int:
    parser = argparse.ArgumentParser(
        description="Compare a bench report against the checked-in baseline."
    )
    parser.add_argument("report", type=Path, help="BENCH_*.json to gate")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baseline_bench.json"),
        help="checked-in baseline file (default benchmarks/baseline_bench.json)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="refresh the baseline's section for this report's workload and exit",
    )
    args = parser.parse_args(argv)

    if not args.report.is_file():
        raise SystemExit(f"FAIL: no such report: {args.report}")
    report = json.loads(args.report.read_text())
    workload, rows = _extract(report)

    if args.write_baseline:
        _write_baseline(args.baseline, workload, rows, report)
        return 0

    if not args.baseline.is_file():
        raise SystemExit(
            f"FAIL: no baseline at {args.baseline} — create it with "
            f"--write-baseline (see the refresh procedure in this script)"
        )
    baseline = json.loads(args.baseline.read_text())
    section = baseline.get("workloads", {}).get(workload)
    if section is None:
        raise SystemExit(
            f"FAIL: baseline {args.baseline} has no section for workload "
            f"{workload!r} — refresh it with --write-baseline"
        )
    recorded_rows = section.get("rows", {})

    failures: list[str] = []
    compared = 0
    for key in sorted(recorded_rows):
        if key not in rows:
            failures.append(
                f"{workload}/{key}: row in baseline but missing from report"
            )
    for key in sorted(rows):
        if key not in recorded_rows:
            print(
                f"WARN {workload}/{key}: not in baseline (new row — refresh "
                f"with --write-baseline to start gating it)"
            )
            continue
        compared += 1
        failures.extend(_compare(rows[key], recorded_rows[key], f"{workload}/{key}"))

    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    if failures:
        print(
            f"FAIL: {len(failures)} regression(s) against {args.baseline} "
            f"(baseline run {section.get('run_id')})",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: {args.report} — {compared} row(s) within tolerance of "
        f"{args.baseline} [{workload}]"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
