#!/usr/bin/env python3
"""Run the protocol static checker (``python -m repro lint``) from a checkout.

Thin wrapper that bootstraps ``src/`` onto ``sys.path`` so the checker runs
without an installed package::

    python scripts/lint_protocol.py                 # lint src/
    python scripts/lint_protocol.py --strict src    # the CI gate
    python scripts/lint_protocol.py --list-rules

All arguments are forwarded to the ``lint`` subcommand; see
``python -m repro lint --help``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["lint", *sys.argv[1:]]))
